//! Sequential histories, PAC-history **legality**, and executable versions
//! of the paper's Lemmas 3.2–3.4 and Theorem 3.5.
//!
//! Section 3 of the paper defines: a history of an n-PAC object is *legal*
//! if for all `i ∈ [1..n]`, the subsequence of operations with label `i` is
//! either empty, or begins with a propose operation and alternates between
//! propose and decide operations. An n-PAC object is upset **iff** its
//! history is not legal (Lemma 3.2) — this module provides both sides of
//! that equivalence as executable checks, which the test-suite and the
//! experiment binaries run exhaustively over bounded operation spaces.

use crate::error::SpecError;
use crate::ids::Label;
use crate::op::Op;
use crate::pac::PacSpec;
use crate::spec::ObjectSpec;
use crate::value::Value;
use std::fmt;

/// One completed operation in a sequential history: the operation and the
/// response it received.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Event {
    /// The operation applied.
    pub op: Op,
    /// The response the object returned.
    pub response: Value,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.op, self.response)
    }
}

/// A violation of one of the PAC properties of Theorem 3.5, with enough
/// context to reproduce it.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PacViolation {
    /// Two decide operations returned distinct non-`⊥` values.
    Agreement {
        /// Index of the first offending decide in the history.
        first: usize,
        /// Index of the second offending decide in the history.
        second: usize,
        /// The two conflicting values.
        values: (Value, Value),
    },
    /// A decide returned a non-`⊥` value that no propose both proposed and
    /// decided.
    Validity {
        /// Index of the offending decide.
        at: usize,
        /// The unsupported value.
        value: Value,
    },
    /// A decide's `⊥`/non-`⊥` status disagrees with the nontriviality
    /// characterization (Theorem 3.5(c)).
    Nontriviality {
        /// Index of the offending decide.
        at: usize,
        /// What the characterization predicted (`true` = must return `⊥`).
        expected_bot: bool,
        /// The response actually observed.
        got: Value,
    },
}

impl fmt::Display for PacViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacViolation::Agreement { first, second, values } => write!(
                f,
                "agreement violated: decide #{first} returned {} but decide #{second} returned {}",
                values.0, values.1
            ),
            PacViolation::Validity { at, value } => write!(
                f,
                "validity violated: decide #{at} returned {value}, which no propose proposed-and-decided"
            ),
            PacViolation::Nontriviality { at, expected_bot, got } => write!(
                f,
                "nontriviality violated at decide #{at}: expected {} but got {got}",
                if *expected_bot { "⊥" } else { "a non-⊥ value" }
            ),
        }
    }
}

/// Returns `true` if `ops` is a *legal* n-PAC history (Section 3): for every
/// label, the label's subsequence starts with a propose and alternates
/// propose/decide.
///
/// Operations that are not PAC operations (`PROPOSE(v,i)`/`DECIDE(i)` or
/// their `PROPOSEP`/`DECIDEP` forms) are ignored, so the predicate can be
/// applied to projected histories of combined objects.
///
/// # Examples
///
/// ```
/// use lbsa_core::history::is_legal_pac_history;
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
/// use lbsa_core::ids::Label;
///
/// let l1 = Label::new(1).unwrap();
/// let legal = [Op::ProposePac(Value::Int(1), l1), Op::DecidePac(l1)];
/// assert!(is_legal_pac_history(&legal));
/// let illegal = [Op::DecidePac(l1)];
/// assert!(!is_legal_pac_history(&illegal));
/// ```
#[must_use]
pub fn is_legal_pac_history(ops: &[Op]) -> bool {
    // last_was_propose[label] tracks the alternation per label.
    let mut pending: std::collections::HashMap<Label, bool> = std::collections::HashMap::new();
    for op in ops {
        if op.is_pac_propose() {
            let l = op.label().expect("pac proposes carry a label");
            let e = pending.entry(l).or_insert(false);
            if *e {
                return false; // two proposes without a decide in between
            }
            *e = true;
        } else if op.is_pac_decide() {
            let l = op.label().expect("pac decides carry a label");
            let e = pending.entry(l).or_insert(false);
            if !*e {
                return false; // decide with no matching propose
            }
            *e = false;
        }
    }
    true
}

/// Pairs each PAC decide in `ops` with the latest preceding unmatched
/// propose of the same label, returning `matches[j] = Some(i)` when the
/// decide at index `j` matches the propose at index `i`.
#[must_use]
pub fn match_pac_pairs(ops: &[Op]) -> Vec<Option<usize>> {
    let mut open: std::collections::HashMap<Label, usize> = std::collections::HashMap::new();
    let mut matches = vec![None; ops.len()];
    for (idx, op) in ops.iter().enumerate() {
        if op.is_pac_propose() {
            open.insert(op.label().expect("labelled"), idx);
        } else if op.is_pac_decide() {
            let l = op.label().expect("labelled");
            matches[idx] = open.remove(&l);
        }
    }
    matches
}

/// Checks Theorem 3.5(a) — **Agreement**: all non-`⊥` decide responses in a
/// PAC history are equal.
///
/// # Errors
///
/// Returns the first [`PacViolation::Agreement`] found.
pub fn check_pac_agreement(history: &[Event]) -> Result<(), PacViolation> {
    let mut first: Option<(usize, Value)> = None;
    for (idx, ev) in history.iter().enumerate() {
        if ev.op.is_pac_decide() && !ev.response.is_bot() {
            match first {
                None => first = Some((idx, ev.response)),
                Some((fidx, fval)) if fval != ev.response => {
                    return Err(PacViolation::Agreement {
                        first: fidx,
                        second: idx,
                        values: (fval, ev.response),
                    })
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// Checks Theorem 3.5(b) — **Validity**: if a decide returns `v != ⊥`, then
/// some propose operation proposed `v` **and** decided `v` (its matching
/// decide returned `v`).
///
/// # Errors
///
/// Returns the first [`PacViolation::Validity`] found.
pub fn check_pac_validity(history: &[Event]) -> Result<(), PacViolation> {
    let ops: Vec<Op> = history.iter().map(|e| e.op).collect();
    let matches = match_pac_pairs(&ops);
    // Collect the values that were both proposed and decided by a pair.
    let mut grounded: Vec<Value> = Vec::new();
    for (j, m) in matches.iter().enumerate() {
        if let Some(i) = m {
            let proposed = history[*i]
                .op
                .proposed_value()
                .expect("propose has a value");
            if history[j].response == proposed {
                grounded.push(proposed);
            }
        }
    }
    for (idx, ev) in history.iter().enumerate() {
        if ev.op.is_pac_decide() && !ev.response.is_bot() && !grounded.contains(&ev.response) {
            return Err(PacViolation::Validity {
                at: idx,
                value: ev.response,
            });
        }
    }
    Ok(())
}

/// Checks Theorem 3.5(c) — **Nontriviality**: a decide returns `⊥` **iff**
/// (i) the object is upset before it (equivalently, by Lemma 3.2, the strict
/// prefix is illegal), or (ii) there is no operation before it, or the last
/// operation before it is not a propose with the same label.
///
/// # Errors
///
/// Returns the first [`PacViolation::Nontriviality`] found.
pub fn check_pac_nontriviality(history: &[Event]) -> Result<(), PacViolation> {
    let ops: Vec<Op> = history.iter().map(|e| e.op).collect();
    for (idx, ev) in history.iter().enumerate() {
        if !ev.op.is_pac_decide() {
            continue;
        }
        let prefix_illegal = !is_legal_pac_history(&ops[..idx]);
        let no_matching_predecessor =
            idx == 0 || !(ops[idx - 1].is_pac_propose() && ops[idx - 1].label() == ev.op.label());
        let expected_bot = prefix_illegal || no_matching_predecessor;
        if expected_bot != ev.response.is_bot() {
            return Err(PacViolation::Nontriviality {
                at: idx,
                expected_bot,
                got: ev.response,
            });
        }
    }
    Ok(())
}

/// Checks all three PAC properties of Theorem 3.5 at once.
///
/// # Errors
///
/// Returns the first violation found, checking agreement, then validity,
/// then nontriviality.
pub fn check_pac_properties(history: &[Event]) -> Result<(), PacViolation> {
    check_pac_agreement(history)?;
    check_pac_validity(history)?;
    check_pac_nontriviality(history)?;
    Ok(())
}

/// Runs an operation sequence against a [`PacSpec`] and returns the resulting
/// history of events.
///
/// # Errors
///
/// Propagates any [`SpecError`] (malformed labels / reserved values).
pub fn run_pac(spec: &PacSpec, ops: &[Op]) -> Result<Vec<Event>, SpecError> {
    let mut state = spec.initial_state();
    ops.iter()
        .map(|op| {
            let resp = spec.apply_deterministic(&mut state, op)?;
            Ok(Event {
                op: *op,
                response: resp,
            })
        })
        .collect()
}

/// The full PAC operation alphabet for labels `1..=n` over the given values:
/// every `PROPOSE(v, i)` and every `DECIDE(i)`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn pac_op_alphabet(n: usize, values: &[Value]) -> Vec<Op> {
    assert!(n > 0, "pac_op_alphabet requires n >= 1");
    let mut ops = Vec::new();
    for i in 1..=n {
        let label = Label::new(i).expect("i >= 1");
        for &v in values {
            ops.push(Op::ProposePac(v, label));
        }
        ops.push(Op::DecidePac(label));
    }
    ops
}

/// Visits **every** operation sequence over `alphabet` of length `0..=max_len`
/// (`|alphabet|^0 + … + |alphabet|^max_len` sequences), calling `visit` on
/// each. This is the workhorse of the exhaustive spec tests (experiment T1).
pub fn for_each_op_sequence<F>(alphabet: &[Op], max_len: usize, mut visit: F)
where
    F: FnMut(&[Op]),
{
    fn rec<F: FnMut(&[Op])>(alphabet: &[Op], seq: &mut Vec<Op>, remaining: usize, visit: &mut F) {
        visit(seq);
        if remaining == 0 {
            return;
        }
        for op in alphabet {
            seq.push(*op);
            rec(alphabet, seq, remaining - 1, visit);
            seq.pop();
        }
    }
    let mut seq = Vec::with_capacity(max_len);
    rec(alphabet, &mut seq, max_len, &mut visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int;

    fn l(i: usize) -> Label {
        Label::new(i).unwrap()
    }

    fn prop(v: i64, i: usize) -> Op {
        Op::ProposePac(int(v), l(i))
    }

    fn dec(i: usize) -> Op {
        Op::DecidePac(l(i))
    }

    #[test]
    fn empty_history_is_legal() {
        assert!(is_legal_pac_history(&[]));
    }

    #[test]
    fn alternation_per_label() {
        assert!(is_legal_pac_history(&[
            prop(1, 1),
            dec(1),
            prop(2, 1),
            dec(1)
        ]));
        assert!(is_legal_pac_history(&[
            prop(1, 1),
            prop(2, 2),
            dec(1),
            dec(2)
        ]));
        assert!(!is_legal_pac_history(&[dec(1)]));
        assert!(!is_legal_pac_history(&[prop(1, 1), prop(2, 1)]));
        assert!(!is_legal_pac_history(&[prop(1, 1), dec(1), dec(1)]));
    }

    #[test]
    fn legality_ignores_non_pac_ops() {
        assert!(is_legal_pac_history(&[
            Op::Read,
            prop(1, 1),
            Op::Write(int(3)),
            dec(1)
        ]));
    }

    #[test]
    fn pair_matching() {
        let ops = [prop(1, 1), prop(2, 2), dec(1), dec(2), dec(1)];
        let matches = match_pac_pairs(&ops);
        assert_eq!(matches, vec![None, None, Some(0), Some(1), None]);
    }

    #[test]
    fn lemma_3_2_exhaustive_small() {
        // Lemma 3.2: the object is upset at time t iff its history by time t
        // is not legal. Exhaustive over n = 2, values {1, 2}, length <= 4.
        let spec = PacSpec::new(2).unwrap();
        let alphabet = pac_op_alphabet(2, &[int(1), int(2)]);
        let mut count = 0usize;
        for_each_op_sequence(&alphabet, 4, |ops| {
            let mut state = spec.initial_state();
            for (t, op) in ops.iter().enumerate() {
                spec.apply_deterministic(&mut state, op).unwrap();
                let legal = is_legal_pac_history(&ops[..=t]);
                assert_eq!(
                    spec.is_upset(&state),
                    !legal,
                    "lemma 3.2 fails after {:?}",
                    &ops[..=t]
                );
            }
            count += 1;
        });
        assert!(count > 1000, "exhaustive space unexpectedly small: {count}");
    }

    #[test]
    fn lemmas_3_3_and_3_4_exhaustive_small() {
        // Lemma 3.3: when not upset, V[i] = v iff the last op with label i is
        // PROPOSE(v, i). Lemma 3.4: when not upset, L = i iff the last op is
        // PROPOSE(-, i).
        let spec = PacSpec::new(2).unwrap();
        let alphabet = pac_op_alphabet(2, &[int(1), int(2)]);
        for_each_op_sequence(&alphabet, 4, |ops| {
            let mut state = spec.initial_state();
            for op in ops {
                spec.apply_deterministic(&mut state, op).unwrap();
            }
            if spec.is_upset(&state) {
                return;
            }
            // Lemma 3.3.
            for i in 0..2usize {
                let last_with_label = ops
                    .iter()
                    .rev()
                    .find(|o| o.label().map(Label::to_index) == Some(i));
                let expected = match last_with_label {
                    Some(o) if o.is_pac_propose() => o.proposed_value().unwrap(),
                    _ => Value::Nil,
                };
                assert_eq!(state.v[i], expected, "lemma 3.3 fails after {ops:?}");
            }
            // Lemma 3.4.
            let expected_l = match ops.last() {
                Some(o) if o.is_pac_propose() => Some(o.label().unwrap().to_index()),
                _ => None,
            };
            assert_eq!(state.l, expected_l, "lemma 3.4 fails after {ops:?}");
        });
    }

    #[test]
    fn theorem_3_5_exhaustive_small() {
        // Agreement, Validity, and Nontriviality hold on every history of a
        // 2-PAC of length <= 5 over values {1, 2}.
        let spec = PacSpec::new(2).unwrap();
        let alphabet = pac_op_alphabet(2, &[int(1), int(2)]);
        for_each_op_sequence(&alphabet, 5, |ops| {
            let history = run_pac(&spec, ops).unwrap();
            if let Err(v) = check_pac_properties(&history) {
                panic!("theorem 3.5 fails on {ops:?}: {v}");
            }
        });
    }

    #[test]
    fn checkers_catch_fabricated_violations() {
        // Agreement violation: two decides with different non-⊥ values.
        let bad = vec![
            Event {
                op: prop(1, 1),
                response: Value::Done,
            },
            Event {
                op: dec(1),
                response: int(1),
            },
            Event {
                op: prop(2, 2),
                response: Value::Done,
            },
            Event {
                op: dec(2),
                response: int(2),
            },
        ];
        assert!(matches!(
            check_pac_agreement(&bad),
            Err(PacViolation::Agreement { .. })
        ));

        // Validity violation: decide returns a value never proposed.
        let bad = vec![
            Event {
                op: prop(1, 1),
                response: Value::Done,
            },
            Event {
                op: dec(1),
                response: int(9),
            },
        ];
        assert!(matches!(
            check_pac_validity(&bad),
            Err(PacViolation::Validity { .. })
        ));

        // Nontriviality violation: a clean pair returned ⊥.
        let bad = vec![
            Event {
                op: prop(1, 1),
                response: Value::Done,
            },
            Event {
                op: dec(1),
                response: Value::Bot,
            },
        ];
        assert!(matches!(
            check_pac_nontriviality(&bad),
            Err(PacViolation::Nontriviality {
                expected_bot: false,
                ..
            })
        ));

        // Nontriviality violation the other way: an unmatched decide that
        // claims a value.
        let bad = vec![Event {
            op: dec(1),
            response: int(1),
        }];
        assert!(matches!(
            check_pac_nontriviality(&bad),
            Err(PacViolation::Nontriviality {
                expected_bot: true,
                ..
            })
        ));
    }

    #[test]
    fn violation_display_forms() {
        let v = PacViolation::Agreement {
            first: 0,
            second: 2,
            values: (int(1), int(2)),
        };
        assert!(v.to_string().contains("agreement"));
        let v = PacViolation::Validity {
            at: 3,
            value: int(9),
        };
        assert!(v.to_string().contains("validity"));
        let v = PacViolation::Nontriviality {
            at: 1,
            expected_bot: true,
            got: int(1),
        };
        assert!(v.to_string().contains("nontriviality"));
    }

    #[test]
    fn alphabet_size() {
        let a = pac_op_alphabet(3, &[int(1), int(2)]);
        // Per label: 2 proposes + 1 decide = 3; times 3 labels.
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn sequence_enumeration_counts() {
        let alphabet = [Op::Read, Op::Write(int(1))];
        let mut count = 0;
        for_each_op_sequence(&alphabet, 3, |_| count += 1);
        // 1 + 2 + 4 + 8.
        assert_eq!(count, 15);
    }
}
