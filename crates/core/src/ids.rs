//! Identifier newtypes: process ids, object ids, and PAC operation labels.

use crate::error::SpecError;
use std::fmt;

/// A process identifier, `0`-based.
///
/// # Examples
///
/// ```
/// use lbsa_core::ids::Pid;
/// let p = Pid(0);
/// assert_eq!(p.to_string(), "p0");
/// assert_eq!(p.index(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub usize);

impl Pid {
    /// The underlying index of this process.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An identifier of a shared object within a system, `0`-based.
///
/// # Examples
///
/// ```
/// use lbsa_core::ids::ObjId;
/// assert_eq!(ObjId(2).to_string(), "obj2");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub usize);

impl ObjId {
    /// The underlying index of this object.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// A PAC operation label, i.e. the `i` of `PROPOSE(v, i)` / `DECIDE(i)`.
///
/// Labels are **1-based** integers in `[1..n]`, exactly as in Section 3 of
/// the paper. The constructor rejects `0`; the range check against a
/// particular object's `n` happens inside the object specification, which
/// knows its own arity.
///
/// # Examples
///
/// ```
/// use lbsa_core::ids::Label;
/// # fn main() -> Result<(), lbsa_core::error::SpecError> {
/// let l = Label::new(1)?;
/// assert_eq!(l.get(), 1);
/// assert_eq!(l.to_index(), 0); // 0-based index into state arrays
/// assert!(Label::new(0).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(usize);

impl Label {
    /// Creates a label from a 1-based integer.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::ZeroLabel`] if `label` is `0`.
    pub fn new(label: usize) -> Result<Self, SpecError> {
        if label == 0 {
            return Err(SpecError::ZeroLabel);
        }
        Ok(Label(label))
    }

    /// The 1-based label value.
    #[must_use]
    pub fn get(self) -> usize {
        self.0
    }

    /// The 0-based index of this label into a length-`n` state array.
    #[must_use]
    pub fn to_index(self) -> usize {
        self.0 - 1
    }

    /// Returns `true` if this label addresses a port of an `n`-labelled
    /// object, i.e. `1 <= label <= n`.
    #[must_use]
    pub fn in_range(self, n: usize) -> bool {
        self.0 <= n
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_rejects_zero() {
        assert!(matches!(Label::new(0), Err(SpecError::ZeroLabel)));
    }

    #[test]
    fn label_index_conversion() {
        let l = Label::new(3).unwrap();
        assert_eq!(l.get(), 3);
        assert_eq!(l.to_index(), 2);
        assert!(l.in_range(3));
        assert!(!l.in_range(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pid(4).to_string(), "p4");
        assert_eq!(ObjId(1).to_string(), "obj1");
        assert_eq!(Label::new(2).unwrap().to_string(), "2");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(Pid(1) < Pid(2));
        assert!(ObjId(0) < ObjId(1));
        assert!(Label::new(1).unwrap() < Label::new(2).unwrap());
    }
}
