//! The **(n,m)-PAC** object — Section 5 of the paper — and the paper's
//! `Oₙ = (n+1, n)-PAC` (Definition 6.1).
//!
//! An (n,m)-PAC object is the product of an n-PAC object `P` and an
//! m-consensus object `C`, with three operations:
//!
//! * `PROPOSEC(v)` — redirected to `C.PROPOSE(v)`,
//! * `PROPOSEP(v, i)` — redirected to `P.PROPOSE(v, i)`,
//! * `DECIDEP(i)` — redirected to `P.DECIDE(i)`.
//!
//! Both components are deterministic, so the (n,m)-PAC object is
//! deterministic (the paper stresses this: `Oₙ` is the *deterministic*
//! object of Corollary 6.7). Theorem 5.3 places (n,m)-PAC at level `m` of
//! the consensus hierarchy for every `n >= 1`, `m >= 2` — the PAC component
//! adds "orthogonal" power that set agreement cannot see.

use crate::consensus::{ConsensusSpec, ConsensusState};
use crate::error::SpecError;
use crate::op::Op;
use crate::pac::{PacSpec, PacState};
use crate::spec::{ObjectSpec, Outcomes};

/// State of an [`CombinedPacSpec`] object: the pair of component states.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CombinedPacState {
    /// State of the embedded n-PAC object `P`.
    pub pac: PacState,
    /// State of the embedded m-consensus object `C`.
    pub consensus: ConsensusState,
}

/// Sequential specification of the (n,m)-PAC object.
///
/// # Examples
///
/// ```
/// use lbsa_core::combined::CombinedPacSpec;
/// use lbsa_core::spec::ObjectSpec;
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
/// use lbsa_core::ids::Label;
///
/// # fn main() -> Result<(), lbsa_core::error::SpecError> {
/// // O_2 = (3, 2)-PAC.
/// let o2 = CombinedPacSpec::o_n(2)?;
/// assert_eq!((o2.n(), o2.m()), (3, 2));
/// let mut s = o2.initial_state();
///
/// // The consensus face: first value wins.
/// assert_eq!(o2.apply_deterministic(&mut s, &Op::ProposeC(Value::Int(8)))?, Value::Int(8));
/// assert_eq!(o2.apply_deterministic(&mut s, &Op::ProposeC(Value::Int(9)))?, Value::Int(8));
///
/// // The PAC face is untouched by consensus traffic.
/// let l1 = Label::new(1)?;
/// o2.apply_deterministic(&mut s, &Op::ProposeP(Value::Int(5), l1))?;
/// assert_eq!(o2.apply_deterministic(&mut s, &Op::DecideP(l1))?, Value::Int(5));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CombinedPacSpec {
    pac: PacSpec,
    consensus: ConsensusSpec,
}

impl CombinedPacSpec {
    /// Creates an (n,m)-PAC specification.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n == 0` or `m == 0`.
    pub fn new(n: usize, m: usize) -> Result<Self, SpecError> {
        Ok(CombinedPacSpec {
            pac: PacSpec::new(n)?,
            consensus: ConsensusSpec::new(m)?,
        })
    }

    /// Creates the paper's object `Oₙ = (n+1, n)-PAC` (Definition 6.1).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n < 2` (the paper's
    /// separation result is for levels `n >= 2` of the hierarchy).
    pub fn o_n(n: usize) -> Result<Self, SpecError> {
        if n < 2 {
            return Err(SpecError::InvalidArity {
                what: "n",
                got: n,
                min: 2,
            });
        }
        CombinedPacSpec::new(n + 1, n)
    }

    /// The PAC arity `n` (number of labels).
    #[must_use]
    pub fn n(&self) -> usize {
        self.pac.n()
    }

    /// The consensus arity `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.consensus.n()
    }

    /// The embedded n-PAC specification.
    #[must_use]
    pub fn pac_component(&self) -> &PacSpec {
        &self.pac
    }

    /// The embedded m-consensus specification.
    #[must_use]
    pub fn consensus_component(&self) -> &ConsensusSpec {
        &self.consensus
    }

    /// Returns `true` if the embedded PAC object is upset in `state`.
    #[must_use]
    pub fn is_upset(&self, state: &CombinedPacState) -> bool {
        self.pac.is_upset(&state.pac)
    }
}

impl ObjectSpec for CombinedPacSpec {
    type State = CombinedPacState;

    fn name(&self) -> &'static str {
        "(n,m)-PAC"
    }

    fn initial_state(&self) -> CombinedPacState {
        CombinedPacState {
            pac: self.pac.initial_state(),
            consensus: self.consensus.initial_state(),
        }
    }

    fn outcomes(
        &self,
        state: &CombinedPacState,
        op: &Op,
    ) -> Result<Outcomes<CombinedPacState>, SpecError> {
        match op {
            Op::ProposeC(v) => {
                let (resp, cons) = self
                    .consensus
                    .outcomes(&state.consensus, &Op::Propose(*v))?
                    .into_single();
                Ok(Outcomes::single(
                    resp,
                    CombinedPacState {
                        pac: state.pac.clone(),
                        consensus: cons,
                    },
                ))
            }
            Op::ProposeP(v, label) => {
                let (resp, pac) = self.pac.propose(&state.pac, *v, *label)?;
                Ok(Outcomes::single(
                    resp,
                    CombinedPacState {
                        pac,
                        consensus: state.consensus,
                    },
                ))
            }
            Op::DecideP(label) => {
                let (resp, pac) = self.pac.decide(&state.pac, *label)?;
                Ok(Outcomes::single(
                    resp,
                    CombinedPacState {
                        pac,
                        consensus: state.consensus,
                    },
                ))
            }
            other => Err(SpecError::UnsupportedOp {
                object: "(n,m)-PAC",
                op: *other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Label;
    use crate::value::{int, Value};

    fn l(i: usize) -> Label {
        Label::new(i).unwrap()
    }

    #[test]
    fn o_n_arities() {
        for n in 2..=5 {
            let o = CombinedPacSpec::o_n(n).unwrap();
            assert_eq!(o.n(), n + 1, "O_n embeds an (n+1)-PAC");
            assert_eq!(o.m(), n, "O_n embeds an n-consensus");
        }
        assert!(CombinedPacSpec::o_n(1).is_err());
        assert!(CombinedPacSpec::o_n(0).is_err());
    }

    #[test]
    fn components_are_independent() {
        let obj = CombinedPacSpec::new(2, 2).unwrap();
        let mut s = obj.initial_state();
        // Consensus traffic does not set PAC's L: PROPOSEC between a PAC
        // propose/decide pair must NOT make the decide return ⊥, because
        // the components are separate objects glued behind one interface.
        obj.apply_deterministic(&mut s, &Op::ProposeP(int(3), l(1)))
            .unwrap();
        obj.apply_deterministic(&mut s, &Op::ProposeC(int(4)))
            .unwrap();
        assert_eq!(
            obj.apply_deterministic(&mut s, &Op::DecideP(l(1))).unwrap(),
            int(3)
        );
    }

    #[test]
    fn consensus_face_budget() {
        let obj = CombinedPacSpec::new(3, 2).unwrap();
        let mut s = obj.initial_state();
        assert_eq!(
            obj.apply_deterministic(&mut s, &Op::ProposeC(int(1)))
                .unwrap(),
            int(1)
        );
        assert_eq!(
            obj.apply_deterministic(&mut s, &Op::ProposeC(int(2)))
                .unwrap(),
            int(1)
        );
        assert_eq!(
            obj.apply_deterministic(&mut s, &Op::ProposeC(int(3)))
                .unwrap(),
            Value::Bot
        );
    }

    #[test]
    fn pac_face_upset_propagates() {
        let obj = CombinedPacSpec::new(2, 2).unwrap();
        let mut s = obj.initial_state();
        obj.apply_deterministic(&mut s, &Op::DecideP(l(1))).unwrap(); // upset
        assert!(obj.is_upset(&s));
        // The consensus face keeps working even when the PAC face is upset.
        assert_eq!(
            obj.apply_deterministic(&mut s, &Op::ProposeC(int(7)))
                .unwrap(),
            int(7)
        );
    }

    #[test]
    fn rejects_bare_pac_and_consensus_ops() {
        // The (n,m)-PAC interface is PROPOSEC/PROPOSEP/DECIDEP; the bare
        // Propose / ProposePac / DecidePac forms belong to the component
        // objects, not the combination.
        let obj = CombinedPacSpec::new(2, 2).unwrap();
        let s = obj.initial_state();
        for op in [
            Op::Propose(int(1)),
            Op::ProposePac(int(1), l(1)),
            Op::DecidePac(l(1)),
            Op::Read,
        ] {
            assert!(matches!(
                obj.outcomes(&s, &op),
                Err(SpecError::UnsupportedOp { .. })
            ));
        }
    }

    #[test]
    fn label_range_follows_pac_component() {
        let obj = CombinedPacSpec::new(2, 5).unwrap();
        let s = obj.initial_state();
        assert_eq!(
            obj.outcomes(&s, &Op::ProposeP(int(1), l(3))).unwrap_err(),
            SpecError::LabelOutOfRange { label: 3, n: 2 }
        );
    }

    #[test]
    fn combined_is_deterministic() {
        // The paper stresses O_n is deterministic (Corollary 6.7).
        assert!(CombinedPacSpec::o_n(2).unwrap().is_deterministic());
    }

    #[test]
    fn accessors_expose_components() {
        let obj = CombinedPacSpec::new(4, 3).unwrap();
        assert_eq!(obj.pac_component().n(), 4);
        assert_eq!(obj.consensus_component().n(), 3);
    }
}
