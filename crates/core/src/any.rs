//! [`AnyObject`] / [`AnyState`]: the closed sum over all object families.
//!
//! Systems in this workspace hold heterogeneous collections of objects — a
//! protocol might use two registers, an n-consensus object, and a 2-SA
//! object. Rather than boxing trait objects (whose states could not be
//! hashed or compared), the runtime and the explorer work over this enum
//! pair: every family in the paper is a variant, and a whole system
//! configuration is plain, hashable, first-order data.

use crate::combined::{CombinedPacSpec, CombinedPacState};
use crate::consensus::{ConsensusSpec, ConsensusState};
use crate::error::SpecError;
use crate::op::Op;
use crate::pac::{PacSpec, PacState};
use crate::power_object::{PowerObjectSpec, PowerObjectState, SetAgreementPower};
use crate::primitives::{CasSpec, FetchAddSpec, QueueSpec, TestAndSetSpec};
use crate::register::RegisterSpec;
use crate::set_agreement::{SetAgreementSpec, SetAgreementState};
use crate::spec::{ObjectSpec, Outcomes};
use crate::strong_sa::{StrongSaSpec, StrongSaState};
use crate::value::Value;
use std::fmt;

/// Any of the paper's object families, as a single spec type.
///
/// # Examples
///
/// ```
/// use lbsa_core::any::AnyObject;
/// use lbsa_core::spec::ObjectSpec;
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
///
/// # fn main() -> Result<(), lbsa_core::error::SpecError> {
/// let objects = vec![
///     AnyObject::register(),
///     AnyObject::consensus(2)?,
///     AnyObject::strong_sa(),
///     AnyObject::o_n(2)?,
/// ];
/// let mut states: Vec<_> = objects.iter().map(|o| o.initial_state()).collect();
/// let resp = objects[1].outcomes(&states[1], &Op::Propose(Value::Int(3)))?;
/// let (resp, next) = resp.into_single();
/// assert_eq!(resp, Value::Int(3));
/// states[1] = next;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AnyObject {
    /// An atomic read/write register.
    Register(RegisterSpec),
    /// An `n`-consensus object.
    Consensus(ConsensusSpec),
    /// An n-PAC object (Section 3).
    Pac(PacSpec),
    /// The strong 2-set agreement object (Section 4).
    StrongSa(StrongSaSpec),
    /// An (n,k)-SA object (Section 6).
    SetAgreement(SetAgreementSpec),
    /// An (n,m)-PAC object (Section 5); `Oₙ` is `CombinedPac(o_n(n))`.
    CombinedPac(CombinedPacSpec),
    /// A power object `O'` (Section 6).
    Power(PowerObjectSpec),
    /// A test-and-set bit (classic level-2 primitive).
    TestAndSet(TestAndSetSpec),
    /// A fetch-and-add counter (classic level-2 primitive).
    FetchAdd(FetchAddSpec),
    /// A compare-and-swap cell (classic level-∞ primitive).
    Cas(CasSpec),
    /// A FIFO queue (classic level-2 primitive).
    Queue(QueueSpec),
}

/// The state of an [`AnyObject`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum AnyState {
    /// Register state.
    Register(Value),
    /// Consensus state.
    Consensus(ConsensusState),
    /// n-PAC state.
    Pac(PacState),
    /// 2-SA state.
    StrongSa(StrongSaState),
    /// (n,k)-SA state.
    SetAgreement(SetAgreementState),
    /// (n,m)-PAC state.
    CombinedPac(CombinedPacState),
    /// Power-object state.
    Power(PowerObjectState),
    /// Test-and-set state.
    TestAndSet(bool),
    /// Fetch-and-add state.
    FetchAdd(i64),
    /// Compare-and-swap state.
    Cas(Value),
    /// Queue state (front first).
    Queue(Vec<Value>),
}

impl AnyState {
    fn family(&self) -> &'static str {
        match self {
            AnyState::Register(_) => "register",
            AnyState::Consensus(_) => "n-consensus",
            AnyState::Pac(_) => "n-PAC",
            AnyState::StrongSa(_) => "2-SA",
            AnyState::SetAgreement(_) => "(n,k)-SA",
            AnyState::CombinedPac(_) => "(n,m)-PAC",
            AnyState::Power(_) => "O'_n",
            AnyState::TestAndSet(_) => "test-and-set",
            AnyState::FetchAdd(_) => "fetch-and-add",
            AnyState::Cas(_) => "compare-and-swap",
            AnyState::Queue(_) => "fifo-queue",
        }
    }
}

impl fmt::Display for AnyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:?}", self.family(), self)
    }
}

impl AnyObject {
    /// A register.
    #[must_use]
    pub fn register() -> Self {
        AnyObject::Register(RegisterSpec::new())
    }

    /// An `n`-consensus object.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n == 0`.
    pub fn consensus(n: usize) -> Result<Self, SpecError> {
        Ok(AnyObject::Consensus(ConsensusSpec::new(n)?))
    }

    /// An n-PAC object.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n == 0`.
    pub fn pac(n: usize) -> Result<Self, SpecError> {
        Ok(AnyObject::Pac(PacSpec::new(n)?))
    }

    /// The strong 2-SA object.
    #[must_use]
    pub fn strong_sa() -> Self {
        AnyObject::StrongSa(StrongSaSpec::new())
    }

    /// An (n,k)-SA object.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n == 0` or `k == 0`.
    pub fn set_agreement(n: usize, k: usize) -> Result<Self, SpecError> {
        Ok(AnyObject::SetAgreement(SetAgreementSpec::new(n, k)?))
    }

    /// An (n,m)-PAC object.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n == 0` or `m == 0`.
    pub fn combined_pac(n: usize, m: usize) -> Result<Self, SpecError> {
        Ok(AnyObject::CombinedPac(CombinedPacSpec::new(n, m)?))
    }

    /// The paper's `Oₙ = (n+1, n)-PAC` (Definition 6.1).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n < 2`.
    pub fn o_n(n: usize) -> Result<Self, SpecError> {
        Ok(AnyObject::CombinedPac(CombinedPacSpec::o_n(n)?))
    }

    /// The paper's `O'ₙ`, over the certified lower-bound power table
    /// truncated at `max_k`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n < 2` or `max_k == 0`.
    pub fn o_prime_n(n: usize, max_k: usize) -> Result<Self, SpecError> {
        Ok(AnyObject::Power(PowerObjectSpec::o_prime_n(n, max_k)?))
    }

    /// A power object over an explicit [`SetAgreementPower`] table.
    ///
    /// # Errors
    ///
    /// Propagates component construction errors.
    pub fn power(power: SetAgreementPower) -> Result<Self, SpecError> {
        Ok(AnyObject::Power(PowerObjectSpec::new(power)?))
    }

    /// A test-and-set bit.
    #[must_use]
    pub fn test_and_set() -> Self {
        AnyObject::TestAndSet(TestAndSetSpec::new())
    }

    /// A fetch-and-add counter.
    #[must_use]
    pub fn fetch_add() -> Self {
        AnyObject::FetchAdd(FetchAddSpec::new())
    }

    /// A compare-and-swap cell.
    #[must_use]
    pub fn cas() -> Self {
        AnyObject::Cas(CasSpec::new())
    }

    /// An initially-empty FIFO queue.
    #[must_use]
    pub fn queue() -> Self {
        AnyObject::Queue(QueueSpec::new())
    }

    /// A FIFO queue pre-loaded with `items` (front first).
    #[must_use]
    pub fn queue_with(items: Vec<Value>) -> Self {
        AnyObject::Queue(QueueSpec::with_items(items))
    }

    fn mismatch(&self, state: &AnyState) -> SpecError {
        SpecError::StateMismatch {
            object: self.name(),
            state: state.family(),
        }
    }
}

impl ObjectSpec for AnyObject {
    type State = AnyState;

    fn name(&self) -> &'static str {
        match self {
            AnyObject::Register(o) => o.name(),
            AnyObject::Consensus(o) => o.name(),
            AnyObject::Pac(o) => o.name(),
            AnyObject::StrongSa(o) => o.name(),
            AnyObject::SetAgreement(o) => o.name(),
            AnyObject::CombinedPac(o) => o.name(),
            AnyObject::Power(o) => o.name(),
            AnyObject::TestAndSet(o) => o.name(),
            AnyObject::FetchAdd(o) => o.name(),
            AnyObject::Cas(o) => o.name(),
            AnyObject::Queue(o) => o.name(),
        }
    }

    fn initial_state(&self) -> AnyState {
        match self {
            AnyObject::Register(o) => AnyState::Register(o.initial_state()),
            AnyObject::Consensus(o) => AnyState::Consensus(o.initial_state()),
            AnyObject::Pac(o) => AnyState::Pac(o.initial_state()),
            AnyObject::StrongSa(o) => AnyState::StrongSa(o.initial_state()),
            AnyObject::SetAgreement(o) => AnyState::SetAgreement(o.initial_state()),
            AnyObject::CombinedPac(o) => AnyState::CombinedPac(o.initial_state()),
            AnyObject::Power(o) => AnyState::Power(o.initial_state()),
            AnyObject::TestAndSet(o) => AnyState::TestAndSet(o.initial_state()),
            AnyObject::FetchAdd(o) => AnyState::FetchAdd(o.initial_state()),
            AnyObject::Cas(o) => AnyState::Cas(o.initial_state()),
            AnyObject::Queue(o) => AnyState::Queue(o.initial_state()),
        }
    }

    fn outcomes(&self, state: &AnyState, op: &Op) -> Result<Outcomes<AnyState>, SpecError> {
        macro_rules! dispatch {
            ($obj:expr, $variant:ident, $state:expr) => {{
                let inner = match $state {
                    AnyState::$variant(s) => s,
                    other => return Err(self.mismatch(other)),
                };
                let outs = $obj.outcomes(inner, op)?;
                Ok(Outcomes::from_vec(
                    outs.into_vec()
                        .into_iter()
                        .map(|(r, s)| (r, AnyState::$variant(s)))
                        .collect(),
                ))
            }};
        }
        match self {
            AnyObject::Register(o) => dispatch!(o, Register, state),
            AnyObject::Consensus(o) => dispatch!(o, Consensus, state),
            AnyObject::Pac(o) => dispatch!(o, Pac, state),
            AnyObject::StrongSa(o) => dispatch!(o, StrongSa, state),
            AnyObject::SetAgreement(o) => dispatch!(o, SetAgreement, state),
            AnyObject::CombinedPac(o) => dispatch!(o, CombinedPac, state),
            AnyObject::Power(o) => dispatch!(o, Power, state),
            AnyObject::TestAndSet(o) => dispatch!(o, TestAndSet, state),
            AnyObject::FetchAdd(o) => dispatch!(o, FetchAdd, state),
            AnyObject::Cas(o) => dispatch!(o, Cas, state),
            AnyObject::Queue(o) => dispatch!(o, Queue, state),
        }
    }

    fn is_deterministic(&self) -> bool {
        match self {
            AnyObject::Register(o) => o.is_deterministic(),
            AnyObject::Consensus(o) => o.is_deterministic(),
            AnyObject::Pac(o) => o.is_deterministic(),
            AnyObject::StrongSa(o) => o.is_deterministic(),
            AnyObject::SetAgreement(o) => o.is_deterministic(),
            AnyObject::CombinedPac(o) => o.is_deterministic(),
            AnyObject::Power(o) => o.is_deterministic(),
            AnyObject::TestAndSet(o) => o.is_deterministic(),
            AnyObject::FetchAdd(o) => o.is_deterministic(),
            AnyObject::Cas(o) => o.is_deterministic(),
            AnyObject::Queue(o) => o.is_deterministic(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Label;
    use crate::value::int;

    #[test]
    fn every_family_constructs_and_steps() {
        let l1 = Label::new(1).unwrap();
        let cases: Vec<(AnyObject, Op)> = vec![
            (AnyObject::register(), Op::Read),
            (AnyObject::consensus(2).unwrap(), Op::Propose(int(1))),
            (AnyObject::pac(2).unwrap(), Op::ProposePac(int(1), l1)),
            (AnyObject::strong_sa(), Op::Propose(int(1))),
            (AnyObject::set_agreement(3, 2).unwrap(), Op::Propose(int(1))),
            (AnyObject::combined_pac(2, 2).unwrap(), Op::ProposeC(int(1))),
            (AnyObject::o_n(2).unwrap(), Op::ProposeP(int(1), l1)),
            (
                AnyObject::o_prime_n(2, 2).unwrap(),
                Op::ProposeAt(int(1), 2),
            ),
            (AnyObject::test_and_set(), Op::TestAndSet),
            (AnyObject::fetch_add(), Op::FetchAdd(2)),
            (AnyObject::cas(), Op::CompareAndSwap(Value::Nil, int(1))),
            (AnyObject::queue_with(vec![int(5)]), Op::Dequeue),
        ];
        for (obj, op) in cases {
            let state = obj.initial_state();
            let outs = obj
                .outcomes(&state, &op)
                .unwrap_or_else(|e| panic!("{} rejected its own op {op}: {e}", obj.name()));
            assert!(!outs.is_empty());
        }
    }

    #[test]
    fn state_mismatch_is_detected() {
        let reg = AnyObject::register();
        let cons_state = AnyObject::consensus(2).unwrap().initial_state();
        let err = reg.outcomes(&cons_state, &Op::Read).unwrap_err();
        assert_eq!(
            err,
            SpecError::StateMismatch {
                object: "register",
                state: "n-consensus"
            }
        );
    }

    #[test]
    fn determinism_flags() {
        assert!(AnyObject::register().is_deterministic());
        assert!(AnyObject::consensus(2).unwrap().is_deterministic());
        assert!(AnyObject::pac(3).unwrap().is_deterministic());
        assert!(AnyObject::o_n(2).unwrap().is_deterministic());
        assert!(!AnyObject::strong_sa().is_deterministic());
        assert!(!AnyObject::set_agreement(2, 2).unwrap().is_deterministic());
        assert!(!AnyObject::o_prime_n(2, 2).unwrap().is_deterministic());
    }

    #[test]
    fn states_hash_and_compare() {
        use std::collections::HashSet;
        let obj = AnyObject::o_n(2).unwrap();
        let mut set = HashSet::new();
        set.insert(obj.initial_state());
        set.insert(obj.initial_state());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn constructor_errors_propagate() {
        assert!(AnyObject::consensus(0).is_err());
        assert!(AnyObject::pac(0).is_err());
        assert!(AnyObject::set_agreement(0, 1).is_err());
        assert!(AnyObject::combined_pac(1, 0).is_err());
        assert!(AnyObject::o_n(1).is_err());
        assert!(AnyObject::o_prime_n(2, 0).is_err());
    }

    #[test]
    fn display_of_state_names_family() {
        let s = AnyObject::register().initial_state();
        assert!(s.to_string().starts_with("register:"));
    }
}
