//! The **n-PAC** (pseudo-abortable consensus) object — Section 3 of the
//! paper, Algorithm 1.
//!
//! The n-PAC object is a *deterministic, non-abortable* simulation of the
//! abortable n-DAC object of Hadzilacos & Toueg (PODC 2013). It supports two
//! operations, `PROPOSE(v, i)` and `DECIDE(i)`, where the label
//! `i ∈ [1..n]` identifies the simulated port. A process simulates a propose
//! on port `i` of an n-DAC object by applying `PROPOSE(v, i)` and then
//! `DECIDE(i)`.
//!
//! The object becomes permanently **upset** when its operation history stops
//! being *legal* (per-label alternation: each label's subsequence must start
//! with a propose and alternate propose/decide — see
//! [`crate::history::is_legal_pac_history`]). An upset object returns `⊥` to
//! every decide and `done` to every propose. A non-upset object returns `⊥`
//! from `DECIDE(i)` when the immediately preceding operation was not the
//! matching `PROPOSE(-, i)` — this is how it "detects concurrency" and
//! simulates the n-DAC's aborts.

use crate::error::SpecError;
use crate::ids::Label;
use crate::op::Op;
use crate::spec::{check_proposable, ObjectSpec, Outcomes};
use crate::value::Value;

/// State of an n-PAC object — exactly the four components of Section 3.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacState {
    /// `upset`: set once the history becomes illegal; never reset
    /// (Observation 3.1).
    pub upset: bool,
    /// `V[1..n]`: `V[i] = v` iff the last operation with label `i` is a
    /// `PROPOSE(v, i)` (Lemma 3.3). Stored 0-based.
    pub v: Vec<Value>,
    /// `L`: the label of the last operation if that operation was a propose,
    /// `NIL` otherwise (Lemma 3.4). Stored as a 0-based index.
    pub l: Option<usize>,
    /// `val`: the consensus value — the first value whose propose/decide
    /// pair completed cleanly.
    pub val: Value,
}

impl PacState {
    fn fresh(n: usize) -> Self {
        PacState {
            upset: false,
            v: vec![Value::Nil; n],
            l: None,
            val: Value::Nil,
        }
    }
}

/// Sequential specification of the n-PAC object (Algorithm 1).
///
/// # Examples
///
/// A clean propose/decide pair decides the proposed value; an interposed
/// operation makes the decide return `⊥` (concurrency detection):
///
/// ```
/// use lbsa_core::pac::PacSpec;
/// use lbsa_core::spec::ObjectSpec;
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
/// use lbsa_core::ids::Label;
///
/// # fn main() -> Result<(), lbsa_core::error::SpecError> {
/// let pac = PacSpec::new(2)?;
/// let (l1, l2) = (Label::new(1)?, Label::new(2)?);
/// let mut s = pac.initial_state();
///
/// pac.apply_deterministic(&mut s, &Op::ProposePac(Value::Int(4), l1))?;
/// // Another port's propose slips in between the pair…
/// pac.apply_deterministic(&mut s, &Op::ProposePac(Value::Int(6), l2))?;
/// // …port 2's decide (whose propose is the last operation) succeeds,
/// assert_eq!(pac.apply_deterministic(&mut s, &Op::DecidePac(l2))?, Value::Int(6));
/// // while port 1's decide aborts with ⊥ — it detected the concurrency.
/// assert_eq!(pac.apply_deterministic(&mut s, &Op::DecidePac(l1))?, Value::Bot);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacSpec {
    n: usize,
}

impl PacSpec {
    /// Creates an n-PAC specification.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidArity`] if `n == 0`.
    pub fn new(n: usize) -> Result<Self, SpecError> {
        if n == 0 {
            return Err(SpecError::InvalidArity {
                what: "n",
                got: 0,
                min: 1,
            });
        }
        Ok(PacSpec { n })
    }

    /// The number of labels (simulated ports) `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Returns `true` if the object is upset in `state`.
    #[must_use]
    pub fn is_upset(&self, state: &PacState) -> bool {
        state.upset
    }

    fn check_label(&self, label: Label) -> Result<usize, SpecError> {
        if label.in_range(self.n) {
            Ok(label.to_index())
        } else {
            Err(SpecError::LabelOutOfRange {
                label: label.get(),
                n: self.n,
            })
        }
    }

    /// Algorithm 1, `PROPOSE(v, i)`: shared with the (n,m)-PAC wrapper.
    pub(crate) fn propose(
        &self,
        state: &PacState,
        v: Value,
        label: Label,
    ) -> Result<(Value, PacState), SpecError> {
        check_proposable(v)?;
        let i = self.check_label(label)?;
        let mut next = state.clone();
        // Line 2: if V[i] != NIL then upset <- true.
        if !next.v[i].is_nil() {
            next.upset = true;
        }
        // Lines 3-5: if not upset, record the proposal.
        if !next.upset {
            next.l = Some(i);
            next.v[i] = v;
        }
        // Line 6: return done.
        Ok((Value::Done, next))
    }

    /// Algorithm 1, `DECIDE(i)`: shared with the (n,m)-PAC wrapper.
    pub(crate) fn decide(
        &self,
        state: &PacState,
        label: Label,
    ) -> Result<(Value, PacState), SpecError> {
        let i = self.check_label(label)?;
        let mut next = state.clone();
        // Line 8: if V[i] = NIL then upset <- true.
        if next.v[i].is_nil() {
            next.upset = true;
        }
        // Line 9: if upset then return ⊥.
        if next.upset {
            return Ok((Value::Bot, next));
        }
        // Lines 10-14.
        let temp = if next.l != Some(i) {
            Value::Bot
        } else {
            if next.val.is_nil() {
                next.val = next.v[i];
            }
            next.val
        };
        // Lines 15-16 (both branches).
        next.l = None;
        next.v[i] = Value::Nil;
        // Line 17.
        Ok((temp, next))
    }
}

impl ObjectSpec for PacSpec {
    type State = PacState;

    fn name(&self) -> &'static str {
        "n-PAC"
    }

    fn initial_state(&self) -> PacState {
        PacState::fresh(self.n)
    }

    fn outcomes(&self, state: &PacState, op: &Op) -> Result<Outcomes<PacState>, SpecError> {
        match op {
            Op::ProposePac(v, label) => {
                let (resp, next) = self.propose(state, *v, *label)?;
                Ok(Outcomes::single(resp, next))
            }
            Op::DecidePac(label) => {
                let (resp, next) = self.decide(state, *label)?;
                Ok(Outcomes::single(resp, next))
            }
            other => Err(SpecError::UnsupportedOp {
                object: "n-PAC",
                op: *other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int;

    fn l(i: usize) -> Label {
        Label::new(i).unwrap()
    }

    fn pac(n: usize) -> PacSpec {
        PacSpec::new(n).unwrap()
    }

    fn apply(p: &PacSpec, s: &mut PacState, op: Op) -> Value {
        p.apply_deterministic(s, &op).unwrap()
    }

    #[test]
    fn rejects_zero_arity() {
        assert!(PacSpec::new(0).is_err());
        assert!(PacSpec::new(1).is_ok());
    }

    #[test]
    fn clean_pair_decides_proposed_value() {
        let p = pac(3);
        let mut s = p.initial_state();
        assert_eq!(apply(&p, &mut s, Op::ProposePac(int(7), l(2))), Value::Done);
        assert_eq!(apply(&p, &mut s, Op::DecidePac(l(2))), int(7));
        assert!(!p.is_upset(&s));
    }

    #[test]
    fn consensus_value_sticks_across_ports() {
        // Once some pair decides v, every later clean pair also decides v
        // (the `val` field): this is the Agreement property in action.
        let p = pac(3);
        let mut s = p.initial_state();
        apply(&p, &mut s, Op::ProposePac(int(1), l(1)));
        assert_eq!(apply(&p, &mut s, Op::DecidePac(l(1))), int(1));
        apply(&p, &mut s, Op::ProposePac(int(2), l(2)));
        assert_eq!(apply(&p, &mut s, Op::DecidePac(l(2))), int(1));
        apply(&p, &mut s, Op::ProposePac(int(3), l(3)));
        assert_eq!(apply(&p, &mut s, Op::DecidePac(l(3))), int(1));
    }

    #[test]
    fn interposed_propose_makes_decide_bot_without_upset() {
        let p = pac(2);
        let mut s = p.initial_state();
        apply(&p, &mut s, Op::ProposePac(int(4), l(1)));
        apply(&p, &mut s, Op::ProposePac(int(6), l(2)));
        assert_eq!(apply(&p, &mut s, Op::DecidePac(l(1))), Value::Bot);
        assert!(
            !p.is_upset(&s),
            "concurrency detection must not upset the object"
        );
    }

    #[test]
    fn decide_without_matching_propose_upsets() {
        let p = pac(2);
        let mut s = p.initial_state();
        assert_eq!(apply(&p, &mut s, Op::DecidePac(l(1))), Value::Bot);
        assert!(p.is_upset(&s));
    }

    #[test]
    fn double_propose_same_label_upsets() {
        let p = pac(2);
        let mut s = p.initial_state();
        apply(&p, &mut s, Op::ProposePac(int(1), l(1)));
        assert_eq!(apply(&p, &mut s, Op::ProposePac(int(2), l(1))), Value::Done);
        assert!(p.is_upset(&s));
    }

    #[test]
    fn upset_is_permanent_and_bot_forever() {
        // Observation 3.1 + the "once upset" behaviour: ⊥ to all decides,
        // done to all proposes.
        let p = pac(2);
        let mut s = p.initial_state();
        apply(&p, &mut s, Op::DecidePac(l(2))); // upsets
        assert!(p.is_upset(&s));
        for _ in 0..3 {
            assert_eq!(apply(&p, &mut s, Op::ProposePac(int(9), l(1))), Value::Done);
            assert_eq!(apply(&p, &mut s, Op::DecidePac(l(1))), Value::Bot);
            assert!(p.is_upset(&s));
        }
    }

    #[test]
    fn decide_after_clean_decide_on_same_label_upsets() {
        // PROPOSE(v,1) DECIDE(1) DECIDE(1): the second decide has no matching
        // propose (V[1] was reset to NIL), so the object becomes upset.
        let p = pac(2);
        let mut s = p.initial_state();
        apply(&p, &mut s, Op::ProposePac(int(5), l(1)));
        assert_eq!(apply(&p, &mut s, Op::DecidePac(l(1))), int(5));
        assert_eq!(apply(&p, &mut s, Op::DecidePac(l(1))), Value::Bot);
        assert!(p.is_upset(&s));
    }

    #[test]
    fn decide_resets_l_and_v_even_when_aborting() {
        // Lines 15-16 run on the ⊥ path too: after PROPOSE(a,1) PROPOSE(b,2)
        // DECIDE(1)=⊥, port 1's V entry is cleared, so a fresh PROPOSE(c,1)
        // does not upset.
        let p = pac(2);
        let mut s = p.initial_state();
        apply(&p, &mut s, Op::ProposePac(int(1), l(1)));
        apply(&p, &mut s, Op::ProposePac(int(2), l(2)));
        assert_eq!(apply(&p, &mut s, Op::DecidePac(l(1))), Value::Bot);
        assert_eq!(s.v[0], Value::Nil);
        assert_eq!(s.l, None);
        apply(&p, &mut s, Op::ProposePac(int(3), l(1)));
        assert!(!p.is_upset(&s));
        // But port 2's pending proposal was ALSO cleared... no: V[2] was not
        // cleared by DECIDE(1) — only V[1] and L are cleared. Decide(2) sees
        // L = 1 (the index of the last propose), so it returns the consensus
        // path only if L == 2. Here the last operation is PROPOSE(3, 1), so
        // L = index of label 1, and DECIDE(2) aborts with ⊥ (not upset).
        assert_eq!(s.v[1], int(2));
        assert_eq!(apply(&p, &mut s, Op::DecidePac(l(2))), Value::Bot);
        assert!(!p.is_upset(&s));
    }

    #[test]
    fn label_out_of_range_is_an_error() {
        let p = pac(2);
        let s = p.initial_state();
        assert_eq!(
            p.outcomes(&s, &Op::ProposePac(int(1), l(3))).unwrap_err(),
            SpecError::LabelOutOfRange { label: 3, n: 2 }
        );
        assert_eq!(
            p.outcomes(&s, &Op::DecidePac(l(9))).unwrap_err(),
            SpecError::LabelOutOfRange { label: 9, n: 2 }
        );
    }

    #[test]
    fn reserved_values_rejected() {
        let p = pac(2);
        let s = p.initial_state();
        for v in [Value::Nil, Value::Bot, Value::Done] {
            assert_eq!(
                p.outcomes(&s, &Op::ProposePac(v, l(1))).unwrap_err(),
                SpecError::ReservedValue(v)
            );
        }
    }

    #[test]
    fn rejects_foreign_operations() {
        let p = pac(2);
        let s = p.initial_state();
        for op in [Op::Read, Op::Propose(int(1)), Op::ProposeP(int(1), l(1))] {
            assert!(matches!(
                p.outcomes(&s, &op),
                Err(SpecError::UnsupportedOp { .. })
            ));
        }
    }

    #[test]
    fn one_pac_is_valid() {
        // n = 1 is allowed (the paper uses n >= 1 for PAC; only DAC needs
        // n >= 2). A single-port PAC behaves like a solo-detecting consensus.
        let p = pac(1);
        let mut s = p.initial_state();
        apply(&p, &mut s, Op::ProposePac(int(3), l(1)));
        assert_eq!(apply(&p, &mut s, Op::DecidePac(l(1))), int(3));
    }
}
