//! Error types for object specifications.

use crate::op::Op;
use crate::value::Value;
use std::error::Error;
use std::fmt;

/// An error raised by an object specification when an operation is
/// malformed for that object.
///
/// These errors correspond to *type errors of the model* — a process applying
/// a `DECIDE` to a register, proposing the reserved symbol `⊥`, or using a
/// label outside `[1..n]`. They are distinct from in-model failure responses
/// such as `⊥`, which are ordinary [`Value`]s returned by well-formed
/// operations.
///
/// # Examples
///
/// ```
/// use lbsa_core::register::RegisterSpec;
/// use lbsa_core::spec::ObjectSpec;
/// use lbsa_core::op::Op;
/// use lbsa_core::ids::Label;
///
/// let reg = RegisterSpec::new();
/// let state = reg.initial_state();
/// let label = Label::new(1).unwrap();
/// let err = reg.outcomes(&state, &Op::DecidePac(label)).unwrap_err();
/// assert!(err.to_string().contains("does not support"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// The operation is not part of this object's interface.
    UnsupportedOp {
        /// Human-readable name of the object family, e.g. `"register"`.
        object: &'static str,
        /// The offending operation.
        op: Op,
    },
    /// A PAC label was outside the object's `[1..n]` range.
    LabelOutOfRange {
        /// The 1-based label that was used.
        label: usize,
        /// The object's arity `n`.
        n: usize,
    },
    /// A label of `0` was constructed; labels are 1-based.
    ZeroLabel,
    /// A reserved value (`NIL`, `⊥`, or `done`) was proposed.
    ReservedValue(Value),
    /// An object was constructed with an invalid arity (e.g. a `0`-consensus
    /// object or an `(n, 0)`-SA object).
    InvalidArity {
        /// Name of the offending parameter, e.g. `"n"` or `"k"`.
        what: &'static str,
        /// The value supplied.
        got: usize,
        /// The minimum admissible value.
        min: usize,
    },
    /// A state of the wrong object family was passed to an [`crate::any::AnyObject`].
    StateMismatch {
        /// The object family that received the state.
        object: &'static str,
        /// The family the state actually belongs to.
        state: &'static str,
    },
    /// A `PROPOSE(v, k)` on a power object used a level `k` outside the
    /// materialized range `[1..=max_k]`.
    PowerLevelOutOfRange {
        /// The requested set-agreement level.
        k: usize,
        /// The largest materialized level.
        max_k: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnsupportedOp { object, op } => {
                write!(f, "{object} object does not support operation {op}")
            }
            SpecError::LabelOutOfRange { label, n } => {
                write!(
                    f,
                    "label {label} is out of range for an object with n = {n}"
                )
            }
            SpecError::ZeroLabel => write!(f, "labels are 1-based; 0 is not a valid label"),
            SpecError::ReservedValue(v) => {
                write!(f, "reserved value {v} may not be proposed")
            }
            SpecError::InvalidArity { what, got, min } => {
                write!(
                    f,
                    "invalid arity: {what} = {got}, but {what} must be at least {min}"
                )
            }
            SpecError::StateMismatch { object, state } => {
                write!(f, "{object} object was given a {state} state")
            }
            SpecError::PowerLevelOutOfRange { k, max_k } => {
                write!(
                    f,
                    "power object has no component for k = {k} (max materialized k is {max_k})"
                )
            }
        }
    }
}

impl Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<SpecError> = vec![
            SpecError::UnsupportedOp {
                object: "register",
                op: Op::Propose(Value::Int(1)),
            },
            SpecError::LabelOutOfRange { label: 5, n: 3 },
            SpecError::ZeroLabel,
            SpecError::ReservedValue(Value::Bot),
            SpecError::InvalidArity {
                what: "n",
                got: 0,
                min: 1,
            },
            SpecError::StateMismatch {
                object: "consensus",
                state: "register",
            },
            SpecError::PowerLevelOutOfRange { k: 9, max_k: 4 },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase() || !msg.starts_with(char::is_uppercase)
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpecError>();
    }
}
