//! The **strong 2-set agreement (2-SA)** object — Section 4 of the paper,
//! Algorithm 3.
//!
//! The 2-SA object solves 2-set agreement among *any finite number* of
//! processes, but is "strong": every response is one of the **first two
//! distinct** values proposed to it (the 2-set agreement problem itself would
//! allow any two proposed values). Its state is a set `STATE` of at most two
//! values; `PROPOSE(v)` adds `v` when `|STATE| < 2` and returns an
//! **arbitrarily selected** element of `STATE` — the one nondeterministic
//! base object in the paper, and the reason Theorem 4.2's proof needs the
//! special-case Claims 4.2.6.2 and 4.2.10.

use crate::error::SpecError;
use crate::op::Op;
use crate::spec::{check_proposable, ObjectSpec, Outcomes};
use crate::value::Value;

/// State of a [`StrongSaSpec`] object: the set `STATE`, `|STATE| <= 2`.
///
/// The set is stored canonically (sorted pair, `NIL` = absent) so that
/// equal sets hash equally during exploration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrongSaState {
    slots: [Value; 2],
}

impl StrongSaState {
    /// The members of `STATE`, in canonical order.
    #[must_use]
    pub fn members(&self) -> Vec<Value> {
        self.slots.iter().copied().filter(|v| !v.is_nil()).collect()
    }

    /// The number of values captured so far (0, 1, or 2).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|v| !v.is_nil()).count()
    }

    /// Returns `true` if no value has been captured yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `v ∈ STATE`.
    #[must_use]
    pub fn contains(&self, v: Value) -> bool {
        self.slots.contains(&v) && !v.is_nil()
    }

    fn insert(&self, v: Value) -> StrongSaState {
        if self.contains(v) || self.len() == 2 {
            return *self;
        }
        let mut slots = self.slots;
        if slots[0].is_nil() {
            slots[0] = v;
        } else {
            slots[1] = v;
        }
        slots.sort();
        // Keep NIL (absent) slots at the end for a canonical form: NIL sorts
        // first, so re-normalize.
        if slots[0].is_nil() {
            slots.swap(0, 1);
        }
        StrongSaState { slots }
    }
}

/// Sequential specification of the strong 2-set agreement object
/// (Algorithm 3).
///
/// This object is **nondeterministic**: [`ObjectSpec::outcomes`] returns one
/// alternative per member of `STATE` after the insertion.
///
/// # Examples
///
/// ```
/// use lbsa_core::strong_sa::StrongSaSpec;
/// use lbsa_core::spec::ObjectSpec;
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
///
/// # fn main() -> Result<(), lbsa_core::error::SpecError> {
/// let sa = StrongSaSpec::new();
/// let s0 = sa.initial_state();
///
/// // The first propose deterministically returns its own value…
/// let outs = sa.outcomes(&s0, &Op::Propose(Value::Int(1)))?;
/// assert!(outs.is_deterministic());
/// let (resp, s1) = outs.into_single();
/// assert_eq!(resp, Value::Int(1));
///
/// // …but once STATE holds two values, each propose may return either.
/// let (_, s2) = sa.outcomes(&s1, &Op::Propose(Value::Int(2)))?.into_vec().pop().unwrap();
/// let outs = sa.outcomes(&s2, &Op::Propose(Value::Int(3)))?;
/// let responses: Vec<_> = outs.iter().map(|(r, _)| *r).collect();
/// assert_eq!(responses, vec![Value::Int(1), Value::Int(2)]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StrongSaSpec;

impl StrongSaSpec {
    /// Creates a 2-SA specification.
    #[must_use]
    pub fn new() -> Self {
        StrongSaSpec
    }
}

impl ObjectSpec for StrongSaSpec {
    type State = StrongSaState;

    fn name(&self) -> &'static str {
        "2-SA"
    }

    fn initial_state(&self) -> StrongSaState {
        StrongSaState::default()
    }

    fn outcomes(
        &self,
        state: &StrongSaState,
        op: &Op,
    ) -> Result<Outcomes<StrongSaState>, SpecError> {
        match op {
            Op::Propose(v) => {
                check_proposable(*v)?;
                // Line 2: if |STATE| < 2 then STATE <- STATE ∪ {v}.
                let next = state.insert(*v);
                // Line 3: return an arbitrary value from STATE. The state of
                // the object "only records values that are proposed to it,
                // not values that it returns" (Subclaim 4.2.6.2), so every
                // alternative shares the same next-state.
                let alts: Vec<(Value, StrongSaState)> =
                    next.members().into_iter().map(|m| (m, next)).collect();
                Ok(Outcomes::from_vec(alts))
            }
            other => Err(SpecError::UnsupportedOp {
                object: "2-SA",
                op: *other,
            }),
        }
    }

    fn is_deterministic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int;

    #[test]
    fn first_propose_returns_own_value() {
        let sa = StrongSaSpec::new();
        let outs = sa
            .outcomes(&sa.initial_state(), &Op::Propose(int(5)))
            .unwrap();
        assert!(outs.is_deterministic());
        let (resp, state) = outs.into_single();
        assert_eq!(resp, int(5));
        assert_eq!(state.members(), vec![int(5)]);
    }

    #[test]
    fn only_first_two_distinct_values_are_captured() {
        let sa = StrongSaSpec::new();
        let mut s = sa.initial_state();
        for v in [1i64, 2, 3, 4] {
            let outs = sa.outcomes(&s, &Op::Propose(int(v))).unwrap();
            s = outs.into_vec().pop().unwrap().1;
        }
        assert_eq!(s.members(), vec![int(1), int(2)]);
    }

    #[test]
    fn duplicate_proposals_do_not_fill_the_set() {
        let sa = StrongSaSpec::new();
        let mut s = sa.initial_state();
        for _ in 0..3 {
            s = sa
                .outcomes(&s, &Op::Propose(int(7)))
                .unwrap()
                .into_vec()
                .pop()
                .unwrap()
                .1;
        }
        assert_eq!(s.members(), vec![int(7)]);
        // A later distinct proposal still gets in.
        s = sa
            .outcomes(&s, &Op::Propose(int(9)))
            .unwrap()
            .into_vec()
            .pop()
            .unwrap()
            .1;
        assert_eq!(s.len(), 2);
        assert!(s.contains(int(9)));
    }

    #[test]
    fn all_responses_come_from_state() {
        let sa = StrongSaSpec::new();
        let mut s = sa.initial_state();
        s = sa
            .outcomes(&s, &Op::Propose(int(1)))
            .unwrap()
            .into_vec()
            .pop()
            .unwrap()
            .1;
        s = sa
            .outcomes(&s, &Op::Propose(int(2)))
            .unwrap()
            .into_vec()
            .pop()
            .unwrap()
            .1;
        let outs = sa.outcomes(&s, &Op::Propose(int(3))).unwrap();
        assert_eq!(outs.len(), 2);
        for (resp, next) in outs.iter() {
            assert!(s.contains(*resp), "response must come from STATE");
            assert_eq!(*next, s, "a saturated 2-SA never changes state");
        }
    }

    #[test]
    fn responses_do_not_affect_state() {
        // Subclaim 4.2.6.2's key fact: alternatives differ only in the
        // response, never in the next state.
        let sa = StrongSaSpec::new();
        let mut s = sa.initial_state();
        s = sa
            .outcomes(&s, &Op::Propose(int(1)))
            .unwrap()
            .into_vec()
            .pop()
            .unwrap()
            .1;
        let outs = sa.outcomes(&s, &Op::Propose(int(2))).unwrap().into_vec();
        let states: Vec<StrongSaState> = outs.iter().map(|(_, st)| *st).collect();
        assert!(states.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn canonical_state_ignores_insertion_order() {
        let sa = StrongSaSpec::new();
        let s12 = {
            let mut s = sa.initial_state();
            s = sa
                .outcomes(&s, &Op::Propose(int(1)))
                .unwrap()
                .into_vec()
                .pop()
                .unwrap()
                .1;
            sa.outcomes(&s, &Op::Propose(int(2)))
                .unwrap()
                .into_vec()
                .pop()
                .unwrap()
                .1
        };
        let s21 = {
            let mut s = sa.initial_state();
            s = sa
                .outcomes(&s, &Op::Propose(int(2)))
                .unwrap()
                .into_vec()
                .pop()
                .unwrap()
                .1;
            sa.outcomes(&s, &Op::Propose(int(1)))
                .unwrap()
                .into_vec()
                .pop()
                .unwrap()
                .1
        };
        assert_eq!(s12, s21, "STATE is a set; representation must be canonical");
    }

    #[test]
    fn rejects_reserved_values_and_foreign_ops() {
        let sa = StrongSaSpec::new();
        let s = sa.initial_state();
        assert!(matches!(
            sa.outcomes(&s, &Op::Propose(Value::Bot)),
            Err(SpecError::ReservedValue(Value::Bot))
        ));
        assert!(matches!(
            sa.outcomes(&s, &Op::Read),
            Err(SpecError::UnsupportedOp { .. })
        ));
    }

    #[test]
    fn spec_reports_nondeterminism() {
        assert!(!StrongSaSpec::new().is_deterministic());
    }

    #[test]
    fn at_most_two_distinct_responses_ever() {
        // Exhaustively follow every nondeterministic branch of 5 proposals
        // and confirm the object never emits more than 2 distinct responses
        // (the defining property of 2-set agreement).
        let sa = StrongSaSpec::new();
        let proposals = [int(1), int(2), int(3), int(4), int(5)];
        // Depth-first over (state, set-of-responses-seen).
        let mut stack = vec![(sa.initial_state(), Vec::<Value>::new(), 0usize)];
        while let Some((state, seen, idx)) = stack.pop() {
            if idx == proposals.len() {
                let mut distinct = seen.clone();
                distinct.sort();
                distinct.dedup();
                assert!(
                    distinct.len() <= 2,
                    "2-SA emitted {} distinct values",
                    distinct.len()
                );
                continue;
            }
            let outs = sa.outcomes(&state, &Op::Propose(proposals[idx])).unwrap();
            for (resp, next) in outs.into_vec() {
                let mut seen2 = seen.clone();
                seen2.push(resp);
                stack.push((next, seen2, idx + 1));
            }
        }
    }
}
