//! Classic shared-memory primitives: test-and-set, fetch-and-add,
//! compare-and-swap, and the FIFO queue.
//!
//! These objects are not defined in *Life Beyond Set Agreement*, but they
//! are the canonical inhabitants of the consensus hierarchy the paper's
//! result lives in (Herlihy 1991): test-and-set, fetch-and-add, and queues
//! sit at level 2; compare-and-swap at level ∞. Having them in the same
//! framework lets the experiments situate the paper's exotic objects —
//! `Oₙ`, `O'ₙ` — next to the familiar ones, certified by the *same*
//! machinery (experiment T7 in `EXPERIMENTS.md`).

use crate::error::SpecError;
use crate::op::Op;
use crate::spec::{ObjectSpec, Outcomes};
use crate::value::Value;

/// An atomic test-and-set bit.
///
/// `TAS` returns the previous value (`0` the first time — the "winner" —
/// and `1` forever after) and sets the bit. `READ` is also supported.
///
/// # Examples
///
/// ```
/// use lbsa_core::primitives::TestAndSetSpec;
/// use lbsa_core::spec::ObjectSpec;
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
///
/// # fn main() -> Result<(), lbsa_core::error::SpecError> {
/// let tas = TestAndSetSpec::new();
/// let mut s = tas.initial_state();
/// assert_eq!(tas.apply_deterministic(&mut s, &Op::TestAndSet)?, Value::Int(0));
/// assert_eq!(tas.apply_deterministic(&mut s, &Op::TestAndSet)?, Value::Int(1));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TestAndSetSpec;

impl TestAndSetSpec {
    /// Creates a test-and-set specification.
    #[must_use]
    pub fn new() -> Self {
        TestAndSetSpec
    }
}

impl ObjectSpec for TestAndSetSpec {
    type State = bool;

    fn name(&self) -> &'static str {
        "test-and-set"
    }

    fn initial_state(&self) -> bool {
        false
    }

    fn outcomes(&self, state: &bool, op: &Op) -> Result<Outcomes<bool>, SpecError> {
        match op {
            Op::TestAndSet => Ok(Outcomes::single(Value::Int(i64::from(*state)), true)),
            Op::Read => Ok(Outcomes::single(Value::Int(i64::from(*state)), *state)),
            other => Err(SpecError::UnsupportedOp {
                object: "test-and-set",
                op: *other,
            }),
        }
    }
}

/// An atomic fetch-and-add counter (initially `0`).
///
/// `FAA(d)` returns the previous value and adds `d`; `READ` returns the
/// current value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchAddSpec;

impl FetchAddSpec {
    /// Creates a fetch-and-add specification.
    #[must_use]
    pub fn new() -> Self {
        FetchAddSpec
    }
}

impl ObjectSpec for FetchAddSpec {
    type State = i64;

    fn name(&self) -> &'static str {
        "fetch-and-add"
    }

    fn initial_state(&self) -> i64 {
        0
    }

    fn outcomes(&self, state: &i64, op: &Op) -> Result<Outcomes<i64>, SpecError> {
        match op {
            Op::FetchAdd(d) => Ok(Outcomes::single(Value::Int(*state), state.wrapping_add(*d))),
            Op::Read => Ok(Outcomes::single(Value::Int(*state), *state)),
            other => Err(SpecError::UnsupportedOp {
                object: "fetch-and-add",
                op: *other,
            }),
        }
    }
}

/// An atomic compare-and-swap cell (initially `NIL`).
///
/// `CAS(expected, new)` replaces the cell with `new` iff it currently holds
/// `expected`, and **always returns the previous value** (so the caller
/// learns the winner on failure). `READ` and `WRITE` are also supported.
///
/// # Examples
///
/// ```
/// use lbsa_core::primitives::CasSpec;
/// use lbsa_core::spec::ObjectSpec;
/// use lbsa_core::op::Op;
/// use lbsa_core::value::Value;
///
/// # fn main() -> Result<(), lbsa_core::error::SpecError> {
/// let cas = CasSpec::new();
/// let mut s = cas.initial_state();
/// // First CAS from NIL wins…
/// let old = cas.apply_deterministic(&mut s, &Op::CompareAndSwap(Value::Nil, Value::Int(7)))?;
/// assert_eq!(old, Value::Nil);
/// // …the second fails and learns the winner.
/// let old = cas.apply_deterministic(&mut s, &Op::CompareAndSwap(Value::Nil, Value::Int(9)))?;
/// assert_eq!(old, Value::Int(7));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CasSpec;

impl CasSpec {
    /// Creates a compare-and-swap specification.
    #[must_use]
    pub fn new() -> Self {
        CasSpec
    }
}

impl ObjectSpec for CasSpec {
    type State = Value;

    fn name(&self) -> &'static str {
        "compare-and-swap"
    }

    fn initial_state(&self) -> Value {
        Value::Nil
    }

    fn outcomes(&self, state: &Value, op: &Op) -> Result<Outcomes<Value>, SpecError> {
        match op {
            Op::CompareAndSwap(expected, new) => {
                let next = if state == expected { *new } else { *state };
                Ok(Outcomes::single(*state, next))
            }
            Op::Read => Ok(Outcomes::single(*state, *state)),
            Op::Write(v) => Ok(Outcomes::single(Value::Done, *v)),
            other => Err(SpecError::UnsupportedOp {
                object: "compare-and-swap",
                op: *other,
            }),
        }
    }
}

/// An atomic FIFO queue, optionally pre-loaded (the classic queue-consensus
/// protocol needs an initial "winner token").
///
/// `ENQ(v)` appends and returns `done`; `DEQ` removes and returns the front,
/// or `nil` when empty.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueSpec {
    initial: Vec<Value>,
}

impl QueueSpec {
    /// Creates an initially-empty queue.
    #[must_use]
    pub fn new() -> Self {
        QueueSpec::default()
    }

    /// Creates a queue pre-loaded with `items` (front first).
    #[must_use]
    pub fn with_items(items: Vec<Value>) -> Self {
        QueueSpec { initial: items }
    }
}

impl ObjectSpec for QueueSpec {
    type State = Vec<Value>;

    fn name(&self) -> &'static str {
        "fifo-queue"
    }

    fn initial_state(&self) -> Vec<Value> {
        self.initial.clone()
    }

    fn outcomes(&self, state: &Vec<Value>, op: &Op) -> Result<Outcomes<Vec<Value>>, SpecError> {
        match op {
            Op::Enqueue(v) => {
                let mut next = state.clone();
                next.push(*v);
                Ok(Outcomes::single(Value::Done, next))
            }
            Op::Dequeue => {
                if state.is_empty() {
                    Ok(Outcomes::single(Value::Nil, state.clone()))
                } else {
                    let mut next = state.clone();
                    let front = next.remove(0);
                    Ok(Outcomes::single(front, next))
                }
            }
            other => Err(SpecError::UnsupportedOp {
                object: "fifo-queue",
                op: *other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::int;

    #[test]
    fn tas_first_wins_then_sticks() {
        let tas = TestAndSetSpec::new();
        let mut s = tas.initial_state();
        assert_eq!(tas.apply_deterministic(&mut s, &Op::Read).unwrap(), int(0));
        assert_eq!(
            tas.apply_deterministic(&mut s, &Op::TestAndSet).unwrap(),
            int(0)
        );
        for _ in 0..3 {
            assert_eq!(
                tas.apply_deterministic(&mut s, &Op::TestAndSet).unwrap(),
                int(1)
            );
        }
        assert_eq!(tas.apply_deterministic(&mut s, &Op::Read).unwrap(), int(1));
    }

    #[test]
    fn faa_returns_previous_and_accumulates() {
        let faa = FetchAddSpec::new();
        let mut s = faa.initial_state();
        assert_eq!(
            faa.apply_deterministic(&mut s, &Op::FetchAdd(5)).unwrap(),
            int(0)
        );
        assert_eq!(
            faa.apply_deterministic(&mut s, &Op::FetchAdd(-2)).unwrap(),
            int(5)
        );
        assert_eq!(faa.apply_deterministic(&mut s, &Op::Read).unwrap(), int(3));
    }

    #[test]
    fn faa_wraps_rather_than_panics() {
        let faa = FetchAddSpec::new();
        let mut s = i64::MAX;
        let prev = faa.apply_deterministic(&mut s, &Op::FetchAdd(1)).unwrap();
        assert_eq!(prev, int(i64::MAX));
        assert_eq!(s, i64::MIN);
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let cas = CasSpec::new();
        let mut s = cas.initial_state();
        assert_eq!(
            cas.apply_deterministic(&mut s, &Op::CompareAndSwap(int(9), int(1)))
                .unwrap(),
            Value::Nil,
            "mismatch returns the old value"
        );
        assert_eq!(s, Value::Nil, "mismatch leaves the cell unchanged");
        cas.apply_deterministic(&mut s, &Op::CompareAndSwap(Value::Nil, int(1)))
            .unwrap();
        assert_eq!(s, int(1));
        assert_eq!(
            cas.apply_deterministic(&mut s, &Op::CompareAndSwap(int(1), int(2)))
                .unwrap(),
            int(1)
        );
        assert_eq!(cas.apply_deterministic(&mut s, &Op::Read).unwrap(), int(2));
    }

    #[test]
    fn queue_fifo_order_and_empty_behaviour() {
        let q = QueueSpec::new();
        let mut s = q.initial_state();
        assert_eq!(
            q.apply_deterministic(&mut s, &Op::Dequeue).unwrap(),
            Value::Nil
        );
        q.apply_deterministic(&mut s, &Op::Enqueue(int(1))).unwrap();
        q.apply_deterministic(&mut s, &Op::Enqueue(int(2))).unwrap();
        assert_eq!(q.apply_deterministic(&mut s, &Op::Dequeue).unwrap(), int(1));
        assert_eq!(q.apply_deterministic(&mut s, &Op::Dequeue).unwrap(), int(2));
        assert_eq!(
            q.apply_deterministic(&mut s, &Op::Dequeue).unwrap(),
            Value::Nil
        );
    }

    #[test]
    fn preloaded_queue_serves_tokens() {
        let q = QueueSpec::with_items(vec![int(100)]);
        let mut s = q.initial_state();
        assert_eq!(
            q.apply_deterministic(&mut s, &Op::Dequeue).unwrap(),
            int(100)
        );
        assert_eq!(
            q.apply_deterministic(&mut s, &Op::Dequeue).unwrap(),
            Value::Nil
        );
    }

    #[test]
    fn foreign_ops_rejected_everywhere() {
        let s = TestAndSetSpec::new().initial_state();
        assert!(TestAndSetSpec::new()
            .outcomes(&s, &Op::Propose(int(1)))
            .is_err());
        let s = FetchAddSpec::new().initial_state();
        assert!(FetchAddSpec::new().outcomes(&s, &Op::TestAndSet).is_err());
        let s = CasSpec::new().initial_state();
        assert!(CasSpec::new().outcomes(&s, &Op::Dequeue).is_err());
        let s = QueueSpec::new().initial_state();
        assert!(QueueSpec::new().outcomes(&s, &Op::Read).is_err());
    }

    #[test]
    fn all_primitives_are_deterministic() {
        assert!(TestAndSetSpec::new().is_deterministic());
        assert!(FetchAddSpec::new().is_deterministic());
        assert!(CasSpec::new().is_deterministic());
        assert!(QueueSpec::new().is_deterministic());
    }
}
