//! Schedulers: the adversarial environment that decides who steps next.
//!
//! In the asynchronous model, an execution is an interleaving of atomic
//! steps chosen by an adversary. A [`Scheduler`] is that adversary. The
//! impossibility proofs of the paper are, operationally, statements about
//! what a sufficiently clever scheduler can do; `lbsa-explorer` provides the
//! cleverest one (exhaustive / bivalency-preserving), while this module
//! provides the everyday ones: round-robin, seeded random, scripted, and
//! solo. A [`CrashPlan`] silences processes permanently, modelling crash
//! failures.

use lbsa_core::Pid;
use lbsa_support::rng::SmallRng;
use std::collections::{BTreeSet, VecDeque};

/// Chooses which of the currently-enabled processes takes the next step.
pub trait Scheduler {
    /// Returns the process to step next, or `None` to end the run.
    ///
    /// `enabled` lists the processes that can take a step (running and not
    /// crashed), in increasing pid order; it is never empty when called.
    fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid>;
}

/// Cycles through processes in pid order, skipping disabled ones.
///
/// Round-robin is a *fair* scheduler: every enabled process is scheduled
/// infinitely often, so it can witness Termination properties.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at `Pid(0)`.
    #[must_use]
    pub fn new() -> Self {
        RoundRobin { next: 0 }
    }
}

impl Scheduler for RoundRobin {
    fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid> {
        // Pick the first enabled pid >= self.next, wrapping around.
        let pid = enabled
            .iter()
            .find(|p| p.index() >= self.next)
            .or_else(|| enabled.first())
            .copied()?;
        self.next = pid.index() + 1;
        Some(pid)
    }
}

/// Chooses uniformly at random among the enabled processes (seeded,
/// reproducible). Random scheduling is fair with probability 1.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: SmallRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from an explicit seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid> {
        let idx = self.rng.random_range(0..enabled.len());
        Some(enabled[idx])
    }
}

/// Plays back an explicit schedule, then stops.
///
/// If a scripted pid is disabled when its turn comes, it is skipped.
/// Used to replay executions found by the explorer or the adversary.
#[derive(Clone, Debug, Default)]
pub struct Scripted {
    script: VecDeque<Pid>,
}

impl Scripted {
    /// Creates a scheduler that plays back `pids` in order.
    #[must_use]
    pub fn new<I: IntoIterator<Item = Pid>>(pids: I) -> Self {
        Scripted {
            script: pids.into_iter().collect(),
        }
    }

    /// Number of unconsumed scripted steps.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl Scheduler for Scripted {
    fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid> {
        while let Some(pid) = self.script.pop_front() {
            if enabled.contains(&pid) {
                return Some(pid);
            }
        }
        None
    }
}

/// Runs a single process solo — the schedule used by the paper's
/// Termination clauses ("if a process takes infinitely many steps solo…").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Solo {
    pid: Pid,
}

impl Solo {
    /// Creates a solo scheduler for `pid`.
    #[must_use]
    pub fn new(pid: Pid) -> Self {
        Solo { pid }
    }
}

impl Scheduler for Solo {
    fn next_pid(&mut self, enabled: &[Pid]) -> Option<Pid> {
        enabled.contains(&self.pid).then_some(self.pid)
    }
}

/// A crash-failure plan: `crash(pid, after)` silences `pid` forever once the
/// system has executed `after` total steps.
///
/// # Examples
///
/// ```
/// use lbsa_runtime::scheduler::CrashPlan;
/// use lbsa_core::Pid;
///
/// let mut plan = CrashPlan::new();
/// plan.crash(Pid(1), 3);
/// assert!(!plan.is_crashed(Pid(1), 2));
/// assert!(plan.is_crashed(Pid(1), 3));
/// assert!(!plan.is_crashed(Pid(0), 100));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    crashes: BTreeSet<(usize, usize)>, // (pid index, after-step)
}

impl CrashPlan {
    /// An empty plan: no process ever crashes.
    #[must_use]
    pub fn new() -> Self {
        CrashPlan::default()
    }

    /// Schedules `pid` to crash once `after` steps have executed
    /// (`after = 0` crashes it before it takes any step).
    pub fn crash(&mut self, pid: Pid, after: usize) -> &mut Self {
        self.crashes.insert((pid.index(), after));
        self
    }

    /// Returns `true` if `pid` is crashed at global step count `step`.
    #[must_use]
    pub fn is_crashed(&self, pid: Pid, step: usize) -> bool {
        self.crashes
            .iter()
            .any(|&(p, after)| p == pid.index() && step >= after)
    }

    /// Returns `true` if the plan crashes no one.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(v: &[usize]) -> Vec<Pid> {
        v.iter().map(|&i| Pid(i)).collect()
    }

    #[test]
    fn round_robin_cycles_fairly() {
        let mut s = RoundRobin::new();
        let enabled = pids(&[0, 1, 2]);
        let picks: Vec<usize> = (0..6)
            .map(|_| s.next_pid(&enabled).unwrap().index())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_disabled() {
        let mut s = RoundRobin::new();
        assert_eq!(s.next_pid(&pids(&[0, 2])).unwrap(), Pid(0));
        assert_eq!(s.next_pid(&pids(&[0, 2])).unwrap(), Pid(2));
        assert_eq!(s.next_pid(&pids(&[0, 2])).unwrap(), Pid(0));
        // Only pid 1 enabled: wraps to it even though next = 1.
        assert_eq!(s.next_pid(&pids(&[1])).unwrap(), Pid(1));
    }

    #[test]
    fn random_scheduler_is_reproducible() {
        let enabled = pids(&[0, 1, 2, 3]);
        let run = |seed| {
            let mut s = RandomScheduler::seeded(seed);
            (0..30)
                .map(|_| s.next_pid(&enabled).unwrap().index())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn scripted_skips_disabled_and_ends() {
        let mut s = Scripted::new(pids(&[1, 0, 1]));
        assert_eq!(s.next_pid(&pids(&[0, 1])), Some(Pid(1)));
        // Pid 0 is disabled now; script entry 0 is skipped, next entry 1 used.
        assert_eq!(s.next_pid(&pids(&[1])), Some(Pid(1)));
        assert_eq!(s.next_pid(&pids(&[1])), None, "script exhausted");
    }

    #[test]
    fn solo_runs_only_its_process() {
        let mut s = Solo::new(Pid(2));
        assert_eq!(s.next_pid(&pids(&[0, 1, 2])), Some(Pid(2)));
        assert_eq!(s.next_pid(&pids(&[0, 1])), None);
    }

    #[test]
    fn crash_plan_boundaries() {
        let mut plan = CrashPlan::new();
        assert!(plan.is_empty());
        plan.crash(Pid(0), 0).crash(Pid(2), 5);
        assert!(!plan.is_empty());
        assert!(plan.is_crashed(Pid(0), 0));
        assert!(!plan.is_crashed(Pid(2), 4));
        assert!(plan.is_crashed(Pid(2), 5));
        assert!(plan.is_crashed(Pid(2), 6));
        assert!(!plan.is_crashed(Pid(1), 1000));
    }
}
