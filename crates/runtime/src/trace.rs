//! Execution traces: the sequence of atomic steps a run took.
//!
//! A trace is the linearization of the execution — because every object is
//! linearizable and every step is atomic, projecting a trace onto one object
//! yields that object's *sequential history* (a `Vec` of
//! [`lbsa_core::history::Event`]), which is what the legality and property
//! checkers of `lbsa-core` consume.

use lbsa_core::history::Event;
use lbsa_core::{ObjId, Op, Pid, Value};
use std::fmt;

/// One atomic step: a process applied an operation to an object and
/// received a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Global step index (0-based).
    pub step: usize,
    /// The process that took the step.
    pub pid: Pid,
    /// The object the operation was applied to.
    pub obj: ObjId,
    /// The operation.
    pub op: Op,
    /// The response returned.
    pub response: Value,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<4} {} {}.{} -> {}",
            self.step, self.pid, self.obj, self.op, self.response
        )
    }
}

/// An execution trace: the ordered list of atomic steps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event (used by the system's step loop).
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The number of steps recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no step has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the recorded steps in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Projects the trace onto one object, yielding its sequential history.
    #[must_use]
    pub fn object_history(&self, obj: ObjId) -> Vec<Event> {
        self.events
            .iter()
            .filter(|e| e.obj == obj)
            .map(|e| Event {
                op: e.op,
                response: e.response,
            })
            .collect()
    }

    /// Projects the trace onto one process, yielding the steps it took.
    #[must_use]
    pub fn process_steps(&self, pid: Pid) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.pid == pid)
            .copied()
            .collect()
    }

    /// The schedule of this trace: the pid sequence, replayable via
    /// [`crate::scheduler::Scripted`].
    #[must_use]
    pub fn schedule(&self) -> Vec<Pid> {
        self.events.iter().map(|e| e.pid).collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "(empty trace)");
        }
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceEvent>>(iter: T) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(step: usize, pid: usize, obj: usize, op: Op, response: Value) -> TraceEvent {
        TraceEvent {
            step,
            pid: Pid(pid),
            obj: ObjId(obj),
            op,
            response,
        }
    }

    #[test]
    fn projections() {
        let t: Trace = vec![
            ev(0, 0, 0, Op::Write(Value::Int(1)), Value::Done),
            ev(1, 1, 1, Op::Propose(Value::Int(2)), Value::Int(2)),
            ev(2, 0, 0, Op::Read, Value::Int(1)),
        ]
        .into_iter()
        .collect();

        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());

        let h0 = t.object_history(ObjId(0));
        assert_eq!(h0.len(), 2);
        assert_eq!(h0[0].op, Op::Write(Value::Int(1)));
        assert_eq!(h0[1].response, Value::Int(1));

        let p1 = t.process_steps(Pid(1));
        assert_eq!(p1.len(), 1);
        assert_eq!(p1[0].obj, ObjId(1));

        assert_eq!(t.schedule(), vec![Pid(0), Pid(1), Pid(0)]);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Trace::new();
        assert_eq!(t.to_string(), "(empty trace)");
        let t: Trace = vec![ev(0, 0, 0, Op::Read, Value::Nil)]
            .into_iter()
            .collect();
        assert!(t.to_string().contains("p0"));
        assert!(t.to_string().contains("READ"));
    }
}
