//! Wait-free **derived objects**: the paper's implementation relation, made
//! executable.
//!
//! "Object `A` can be implemented from instances of `B` and registers" means:
//! there is an *access procedure* such that each operation on (a front-end
//! presenting) `A` is executed as a finite sequence of atomic steps on base
//! objects, and the resulting concurrent front-end histories are
//! linearizable with respect to `A`'s sequential specification.
//!
//! [`AccessProcedure`] is the access procedure; [`DerivedProtocol`] is a
//! *protocol transformer* that takes any [`Protocol`] written against
//! front-end objects and produces an ordinary [`Protocol`] against the base
//! objects. Because the transformed protocol is just another protocol, every
//! tool in the workspace — concrete schedulers, the exhaustive explorer, the
//! bivalency adversary — applies to implemented objects exactly as to native
//! ones. This is what lets experiment T5 attack candidate implementations of
//! `Oₙ` from `O'ₙ` + registers with the very adversary machinery of
//! Theorem 4.2.
//!
//! [`record_frontend_history`] runs a derived protocol and reconstructs the
//! *concurrent* front-end history (invocation/response intervals), which the
//! linearizability checker in `lbsa-explorer` validates against the target
//! specification.

use crate::error::RuntimeError;
use crate::outcome::OutcomeResolver;
use crate::process::{ProcStatus, Protocol, Step};
use crate::scheduler::Scheduler;
use crate::system::{RunEnd, RunResult, System};
use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
use std::fmt::Debug;
use std::hash::{Hash, Hasher};

/// The effect of consuming a base-object response inside an access
/// procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AccessStep<S> {
    /// The access continues with more base steps.
    Continue(S),
    /// The front-end operation completes with this response.
    Return(Value),
}

/// An access procedure: how one front-end operation is executed as a
/// sequence of atomic base-object steps.
///
/// The procedure must be **deterministic** and **wait-free**: `pending` and
/// `resume` are pure functions, and every front-end operation must complete
/// in a bounded number of base steps regardless of interleaving.
pub trait AccessProcedure: Debug + Sync {
    /// Per-access bookkeeping state (program counter + scratch).
    type ProcState: Clone + Eq + Hash + Debug + Send + Sync;

    /// Starts executing `op`, invoked by `pid` on front-end object `front`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `op` is not part of the front-end
    /// object's interface — that is a bug in the calling protocol, akin to a
    /// type error.
    fn begin(&self, pid: Pid, front: ObjId, op: &Op) -> Self::ProcState;

    /// The next base step: an index into the front-end's base-object list
    /// (see [`FrontEnd::Derived`]) and the operation to apply there.
    fn pending(&self, pid: Pid, state: &Self::ProcState) -> (usize, Op);

    /// Consumes the base response: continue the access or return.
    fn resume(
        &self,
        pid: Pid,
        state: &Self::ProcState,
        response: Value,
    ) -> AccessStep<Self::ProcState>;
}

/// How one front-end object id is realized over the base system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrontEnd {
    /// The front-end object *is* a base object: operations pass through
    /// unchanged, one atomic step each.
    Native {
        /// The base object backing this front-end id.
        base: ObjId,
    },
    /// The front-end object is implemented by the access procedure over the
    /// listed base objects. The procedure addresses them by index into this
    /// list.
    Derived {
        /// Base objects available to the access procedure, in procedure
        /// index order.
        base: Vec<ObjId>,
    },
}

/// A front-end operation that completed during a run: the concurrent-history
/// record consumed by the linearizability checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CompletedOp {
    /// The invoking process.
    pub pid: Pid,
    /// The front-end object.
    pub obj: ObjId,
    /// The front-end operation.
    pub op: Op,
    /// The front-end response.
    pub response: Value,
    /// Global step index of the access's first base step (invocation).
    pub invoked_at: usize,
    /// Global step index of the access's last base step (response).
    pub responded_at: usize,
}

/// Local state of a transformed process: the inner protocol's state plus the
/// in-progress access, if any.
///
/// `last_completed` and `completed_count` are *observational* fields used by
/// [`record_frontend_history`]; they are excluded from `Eq`/`Hash` so that
/// exhaustive exploration does not distinguish configurations by them.
#[derive(Clone, Debug)]
pub struct DerivedLocal<L, S> {
    /// The inner protocol's local state.
    pub inner: L,
    /// The in-progress access: (front-end object index, procedure state).
    pub access: Option<(usize, S)>,
    /// The most recently completed front-end operation (observational).
    pub last_completed: Option<(ObjId, Op, Value)>,
    /// Number of front-end operations completed so far (observational).
    pub completed_count: u64,
}

impl<L: PartialEq, S: PartialEq> PartialEq for DerivedLocal<L, S> {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner && self.access == other.access
    }
}

impl<L: Eq, S: Eq> Eq for DerivedLocal<L, S> {}

impl<L: Hash, S: Hash> Hash for DerivedLocal<L, S> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.inner.hash(state);
        self.access.hash(state);
    }
}

/// A protocol transformer: runs `inner` (written against front-end objects)
/// over base objects, expanding derived front-end operations through an
/// [`AccessProcedure`].
///
/// See the crate docs of `lbsa-protocols` for the concrete access procedures
/// from the paper (Observation 5.1, Lemma 6.4).
#[derive(Debug)]
pub struct DerivedProtocol<'a, P, A> {
    inner: &'a P,
    procedure: &'a A,
    frontends: Vec<FrontEnd>,
}

impl<'a, P: Protocol, A: AccessProcedure> DerivedProtocol<'a, P, A> {
    /// Creates the transformed protocol.
    ///
    /// `frontends[i]` describes how the inner protocol's `ObjId(i)` is
    /// realized over the base system.
    #[must_use]
    pub fn new(inner: &'a P, procedure: &'a A, frontends: Vec<FrontEnd>) -> Self {
        DerivedProtocol {
            inner,
            procedure,
            frontends,
        }
    }

    /// The front-end layout.
    #[must_use]
    pub fn frontends(&self) -> &[FrontEnd] {
        &self.frontends
    }

    /// The wrapped inner protocol.
    #[must_use]
    pub fn inner(&self) -> &P {
        self.inner
    }

    /// The access procedure.
    #[must_use]
    pub fn procedure(&self) -> &A {
        self.procedure
    }

    fn frontend(&self, front: ObjId) -> &FrontEnd {
        self.frontends
            .get(front.index())
            .unwrap_or_else(|| panic!("inner protocol targeted unknown front-end object {front}"))
    }

    fn map_base(&self, front_idx: usize, base_idx: usize) -> ObjId {
        match &self.frontends[front_idx] {
            FrontEnd::Derived { base } => *base.get(base_idx).unwrap_or_else(|| {
                panic!("access procedure addressed base index {base_idx} of front-end obj{front_idx}, which has only {} base objects", base.len())
            }),
            FrontEnd::Native { .. } => {
                panic!("access state exists for native front-end obj{front_idx}")
            }
        }
    }
}

impl<'a, P: Protocol, A: AccessProcedure> Protocol for DerivedProtocol<'a, P, A> {
    type LocalState = DerivedLocal<P::LocalState, A::ProcState>;

    fn num_processes(&self) -> usize {
        self.inner.num_processes()
    }

    fn init(&self, pid: Pid) -> Self::LocalState {
        DerivedLocal {
            inner: self.inner.init(pid),
            access: None,
            last_completed: None,
            completed_count: 0,
        }
    }

    fn pending_op(&self, pid: Pid, state: &Self::LocalState) -> (ObjId, Op) {
        if let Some((front_idx, acc)) = &state.access {
            let (base_idx, op) = self.procedure.pending(pid, acc);
            return (self.map_base(*front_idx, base_idx), op);
        }
        let (front, op) = self.inner.pending_op(pid, &state.inner);
        match self.frontend(front) {
            FrontEnd::Native { base } => (*base, op),
            FrontEnd::Derived { .. } => {
                // The access has not started yet; compute its first base step
                // on the fly (begin is deterministic, so on_response will
                // recompute the same state).
                let acc = self.procedure.begin(pid, front, &op);
                let (base_idx, base_op) = self.procedure.pending(pid, &acc);
                (self.map_base(front.index(), base_idx), base_op)
            }
        }
    }

    fn on_response(
        &self,
        pid: Pid,
        state: &Self::LocalState,
        response: Value,
    ) -> Step<Self::LocalState> {
        // Determine the access state this response belongs to.
        let (front, acc) = match &state.access {
            Some((front_idx, acc)) => (ObjId(*front_idx), acc.clone()),
            None => {
                let (front, op) = self.inner.pending_op(pid, &state.inner);
                match self.frontend(front) {
                    FrontEnd::Native { .. } => {
                        // Single-step native op: complete immediately.
                        return self.complete(pid, state, front, response);
                    }
                    FrontEnd::Derived { .. } => (front, self.procedure.begin(pid, front, &op)),
                }
            }
        };
        match self.procedure.resume(pid, &acc, response) {
            AccessStep::Continue(next_acc) => Step::Continue(DerivedLocal {
                inner: state.inner.clone(),
                access: Some((front.index(), next_acc)),
                last_completed: state.last_completed,
                completed_count: state.completed_count,
            }),
            AccessStep::Return(v) => self.complete(pid, state, front, v),
        }
    }
}

impl<'a, P: Protocol, A: AccessProcedure> DerivedProtocol<'a, P, A> {
    fn complete(
        &self,
        pid: Pid,
        state: &DerivedLocal<P::LocalState, A::ProcState>,
        front: ObjId,
        response: Value,
    ) -> Step<DerivedLocal<P::LocalState, A::ProcState>> {
        let (_, op) = self.inner.pending_op(pid, &state.inner);
        match self.inner.on_response(pid, &state.inner, response) {
            Step::Continue(next_inner) => Step::Continue(DerivedLocal {
                inner: next_inner,
                access: None,
                last_completed: Some((front, op, response)),
                completed_count: state.completed_count + 1,
            }),
            Step::Decide(v) => Step::Decide(v),
            Step::Abort => Step::Abort,
            Step::Halt => Step::Halt,
        }
    }
}

/// Runs a derived protocol to completion, reconstructing the concurrent
/// front-end history.
///
/// Returns the completed front-end operations (with invocation/response step
/// indices) and the run result. Front-end operations still in progress when
/// the run ends are *pending* and are not reported; this is sound because a
/// truly pending operation has not returned to anyone. Operations whose
/// completion coincides with the process's final transition (the last
/// response drives a Decide/Abort/Halt) **are** recorded: their front-end
/// response is reconstructed by replaying the final base response through
/// the access procedure, since later operations of other processes may
/// depend on their effect.
///
/// # Errors
///
/// Propagates runtime errors from stepping the system.
pub fn record_frontend_history<P, A, S, R>(
    protocol: &DerivedProtocol<'_, P, A>,
    objects: &[AnyObject],
    scheduler: &mut S,
    resolver: &mut R,
    max_steps: usize,
) -> Result<(Vec<CompletedOp>, RunResult), RuntimeError>
where
    P: Protocol,
    A: AccessProcedure,
    S: Scheduler,
    R: OutcomeResolver,
{
    let mut sys = System::new(protocol, objects)?;
    let n = protocol.num_processes();
    let mut history: Vec<CompletedOp> = Vec::new();
    // Per-pid: invocation step of the in-progress access, and completions seen.
    let mut invoked_at: Vec<Option<usize>> = vec![None; n];
    let mut seen_count: Vec<u64> = vec![0; n];

    let end = loop {
        let enabled = sys.enabled_pids();
        if enabled.is_empty() {
            break RunEnd::Quiescent;
        }
        if sys.steps() >= max_steps {
            break RunEnd::MaxSteps;
        }
        let Some(pid) = scheduler.next_pid(&enabled) else {
            break RunEnd::SchedulerStopped;
        };
        let i = pid.index();
        let pre_step_local = match &sys.statuses()[i] {
            ProcStatus::Running(local) => local.clone(),
            _ => unreachable!("scheduler only picks enabled pids"),
        };
        // Does this step begin a new front-end operation?
        let starting_fresh = pre_step_local.access.is_none();
        let step_index = sys.steps();
        if starting_fresh {
            invoked_at[i] = Some(step_index);
        }
        sys.step_pid(pid, resolver)?;
        // Did a front-end operation complete?
        match &sys.statuses()[i] {
            ProcStatus::Running(local) => {
                if local.completed_count > seen_count[i] {
                    seen_count[i] = local.completed_count;
                    let (obj, op, response) = local
                        .last_completed
                        .expect("completed_count implies last_completed");
                    history.push(CompletedOp {
                        pid,
                        obj,
                        op,
                        response,
                        invoked_at: invoked_at[i].expect("invocation recorded"),
                        responded_at: step_index,
                    });
                    invoked_at[i] = None;
                }
            }
            // The process ended (decided/aborted/halted): its final
            // front-end operation completed with the base response recorded
            // in the trace. Reconstruct the front-end response by replaying
            // that base response through the access procedure from the
            // pre-step access state.
            _ => {
                let base_resp = sys
                    .trace()
                    .iter()
                    .last()
                    .expect("a step was just executed")
                    .response;
                let (front, op) = protocol.inner().pending_op(pid, &pre_step_local.inner);
                let response = match protocol.frontends().get(front.index()) {
                    Some(FrontEnd::Native { .. }) => Some(base_resp),
                    Some(FrontEnd::Derived { .. }) => {
                        let acc = match &pre_step_local.access {
                            Some((_, acc)) => acc.clone(),
                            None => protocol.procedure().begin(pid, front, &op),
                        };
                        match protocol.procedure().resume(pid, &acc, base_resp) {
                            AccessStep::Return(v) => Some(v),
                            // Unreachable: the process only ends when the
                            // access returns and the inner protocol halts.
                            AccessStep::Continue(_) => None,
                        }
                    }
                    None => None,
                };
                if let Some(response) = response {
                    history.push(CompletedOp {
                        pid,
                        obj: front,
                        op,
                        response,
                        invoked_at: invoked_at[i].unwrap_or(step_index),
                        responded_at: step_index,
                    });
                }
                invoked_at[i] = None;
            }
        }
    };

    let result = RunResult {
        steps: sys.steps(),
        end,
        decisions: (0..n).map(|i| sys.decision(Pid(i))).collect(),
        aborted: vec![],
        crashed: vec![],
    };
    Ok((history, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::FirstOutcome;
    use crate::scheduler::RoundRobin;
    use lbsa_core::value::int;

    /// A front-end "adder" object implemented over two base registers:
    /// WRITE(v) writes v to both registers (2 base steps); READ reads both
    /// and returns their sum (2 base steps).
    #[derive(Debug)]
    struct AdderProcedure;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum AdderState {
        WriteFirst(Value),
        WriteSecond(Value),
        ReadFirst,
        ReadSecond(i64),
    }

    impl AccessProcedure for AdderProcedure {
        type ProcState = AdderState;

        fn begin(&self, _pid: Pid, _front: ObjId, op: &Op) -> AdderState {
            match op {
                Op::Write(v) => AdderState::WriteFirst(*v),
                Op::Read => AdderState::ReadFirst,
                other => panic!("adder does not support {other}"),
            }
        }

        fn pending(&self, _pid: Pid, state: &AdderState) -> (usize, Op) {
            match state {
                AdderState::WriteFirst(v) => (0, Op::Write(*v)),
                AdderState::WriteSecond(v) => (1, Op::Write(*v)),
                AdderState::ReadFirst => (0, Op::Read),
                AdderState::ReadSecond(_) => (1, Op::Read),
            }
        }

        fn resume(&self, _pid: Pid, state: &AdderState, response: Value) -> AccessStep<AdderState> {
            match state {
                AdderState::WriteFirst(v) => AccessStep::Continue(AdderState::WriteSecond(*v)),
                AdderState::WriteSecond(_) => AccessStep::Return(Value::Done),
                AdderState::ReadFirst => {
                    AccessStep::Continue(AdderState::ReadSecond(response.as_int().unwrap_or(0)))
                }
                AdderState::ReadSecond(first) => {
                    AccessStep::Return(int(first + response.as_int().unwrap_or(0)))
                }
            }
        }
    }

    /// Inner protocol: p0 writes 5 to front-end obj0 (the adder) then halts;
    /// p1 proposes to front-end obj1 (native consensus), then reads the adder
    /// and decides the sum.
    #[derive(Debug)]
    struct Inner;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum InnerState {
        P0Write,
        P1Propose,
        P1Read,
    }

    impl Protocol for Inner {
        type LocalState = InnerState;

        fn num_processes(&self) -> usize {
            2
        }

        fn init(&self, pid: Pid) -> InnerState {
            if pid.index() == 0 {
                InnerState::P0Write
            } else {
                InnerState::P1Propose
            }
        }

        fn pending_op(&self, _pid: Pid, state: &InnerState) -> (ObjId, Op) {
            match state {
                InnerState::P0Write => (ObjId(0), Op::Write(int(5))),
                InnerState::P1Propose => (ObjId(1), Op::Propose(int(7))),
                InnerState::P1Read => (ObjId(0), Op::Read),
            }
        }

        fn on_response(&self, _pid: Pid, state: &InnerState, response: Value) -> Step<InnerState> {
            match state {
                InnerState::P0Write => Step::Halt,
                InnerState::P1Propose => Step::Continue(InnerState::P1Read),
                InnerState::P1Read => Step::Decide(response),
            }
        }
    }

    fn build() -> (Vec<AnyObject>, Vec<FrontEnd>) {
        // Base system: two registers (for the adder) + one native consensus.
        let objects = vec![
            AnyObject::register(),
            AnyObject::register(),
            AnyObject::consensus(2).unwrap(),
        ];
        let frontends = vec![
            FrontEnd::Derived {
                base: vec![ObjId(0), ObjId(1)],
            },
            FrontEnd::Native { base: ObjId(2) },
        ];
        (objects, frontends)
    }

    #[test]
    fn derived_ops_expand_to_base_steps() {
        let inner = Inner;
        let proc_ = AdderProcedure;
        let (objects, frontends) = build();
        let derived = DerivedProtocol::new(&inner, &proc_, frontends);
        let mut sys = System::new(&derived, &objects).unwrap();
        let res = sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 100)
            .unwrap();
        assert!(res.is_quiescent());
        // p0's write = 2 base steps; p1's propose = 1, read = 2. Total 5.
        assert_eq!(res.steps, 5);
        // p1 read both registers after p0 wrote 5 to both (round-robin
        // interleaving: p0 w0, p1 propose, p0 w1, p1 r0, p1 r1): decides 10.
        assert_eq!(sys.decision(Pid(1)), Some(int(10)));
    }

    #[test]
    fn frontend_history_is_recorded_with_intervals() {
        let inner = Inner;
        let proc_ = AdderProcedure;
        let (objects, frontends) = build();
        let derived = DerivedProtocol::new(&inner, &proc_, frontends);
        let (history, res) = record_frontend_history(
            &derived,
            &objects,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            100,
        )
        .unwrap();
        assert!(res.is_quiescent());
        // All three front-end ops are recorded: p1's propose (native,
        // 1 step), p0's write (derived, ends in Halt), and p1's read
        // (derived, ends in Decide).
        assert_eq!(history.len(), 3);
        let propose = history
            .iter()
            .find(|c| c.pid == Pid(1) && c.obj == ObjId(1))
            .unwrap();
        assert_eq!(propose.response, int(7));
        assert_eq!(propose.invoked_at, propose.responded_at);
        let write = history.iter().find(|c| c.pid == Pid(0)).unwrap();
        assert_eq!(write.response, Value::Done);
        assert!(
            write.invoked_at < write.responded_at,
            "the write spans two base steps"
        );
        let read = history
            .iter()
            .find(|c| c.pid == Pid(1) && c.obj == ObjId(0))
            .unwrap();
        assert_eq!(read.response, int(10));
    }

    #[test]
    fn observational_fields_do_not_affect_identity() {
        let a: DerivedLocal<u8, u8> = DerivedLocal {
            inner: 1,
            access: None,
            last_completed: None,
            completed_count: 0,
        };
        let b: DerivedLocal<u8, u8> = DerivedLocal {
            inner: 1,
            access: None,
            last_completed: Some((ObjId(0), Op::Read, Value::Nil)),
            completed_count: 9,
        };
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let h = |x: &DerivedLocal<u8, u8>| {
            let mut hasher = DefaultHasher::new();
            x.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn native_frontend_passes_through() {
        // A protocol that uses only the native front-end behaves as if run
        // directly on the base object.
        #[derive(Debug)]
        struct ProposeOnly;
        impl Protocol for ProposeOnly {
            type LocalState = ();
            fn num_processes(&self) -> usize {
                2
            }
            fn init(&self, _pid: Pid) {}
            fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
                (ObjId(1), Op::Propose(int(pid.index() as i64 + 1)))
            }
            fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
                Step::Decide(resp)
            }
        }
        let inner = ProposeOnly;
        let proc_ = AdderProcedure;
        let (objects, frontends) = build();
        let derived = DerivedProtocol::new(&inner, &proc_, frontends);
        let mut sys = System::new(&derived, &objects).unwrap();
        let res = sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 100)
            .unwrap();
        assert_eq!(res.distinct_decisions(), vec![int(1)]);
    }

    #[test]
    #[should_panic(expected = "unknown front-end")]
    fn unknown_frontend_panics() {
        #[derive(Debug)]
        struct Bad;
        impl Protocol for Bad {
            type LocalState = ();
            fn num_processes(&self) -> usize {
                1
            }
            fn init(&self, _pid: Pid) {}
            fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
                (ObjId(9), Op::Read)
            }
            fn on_response(&self, _pid: Pid, _s: &(), _r: Value) -> Step<()> {
                Step::Halt
            }
        }
        let inner = Bad;
        let proc_ = AdderProcedure;
        let (objects, frontends) = build();
        let derived = DerivedProtocol::new(&inner, &proc_, frontends);
        let mut sys = System::new(&derived, &objects).unwrap();
        let _ = sys.run(&mut RoundRobin::new(), &mut FirstOutcome, 10);
    }

    #[test]
    fn initial_state_has_no_access() {
        let inner = Inner;
        let proc_ = AdderProcedure;
        let (_, frontends) = build();
        let derived = DerivedProtocol::new(&inner, &proc_, frontends);
        let s = derived.init(Pid(0));
        assert!(s.access.is_none());
        assert_eq!(s.completed_count, 0);
        assert_eq!(derived.num_processes(), 2);
        assert_eq!(derived.frontends().len(), 2);
    }
}
