//! # lbsa-runtime — the asynchronous shared-memory system
//!
//! This crate realizes the computational model of *Life Beyond Set
//! Agreement*: asynchronous processes that apply operations to wait-free
//! linearizable shared objects and may fail by crashing.
//!
//! * A [`process::Protocol`] is a **deterministic** per-process step machine:
//!   in every local state a process has exactly one pending operation on one
//!   object, and its next local state is a function of the response. This is
//!   the paper's determinism assumption (used in Theorem 4.2's proof), with
//!   all nondeterminism pushed into the scheduler and the objects.
//! * A [`system::System`] holds the shared objects and process states. One
//!   **atomic step** = one process applies its pending operation to one
//!   object (interleaving semantics of linearizable objects).
//! * A [`scheduler::Scheduler`] chooses which process steps next:
//!   round-robin, seeded random, scripted, or solo. Crashes are modelled by
//!   [`scheduler::CrashPlan`]s — a crashed process simply never takes another
//!   step.
//! * An [`outcome::OutcomeResolver`] chooses among the admissible outcomes of
//!   a nondeterministic object (the 2-SA and (n,k)-SA families).
//! * [`script::ScriptProtocol`] turns a plain workload (a fixed operation
//!   list per process) into a protocol — the substrate for history
//!   generation and machinery fuzzing.
//! * [`derived::DerivedProtocol`] implements the paper's *implementation*
//!   relation: operations on front-end objects are expanded, step by step,
//!   into operations on base objects via an [`derived::AccessProcedure`].
//!   The transformed protocol is an ordinary [`process::Protocol`], so every
//!   tool in the workspace (schedulers, the explorer, the adversary) applies
//!   to implemented objects exactly as to native ones.
//!
//! ## Example: two processes race on a consensus object
//!
//! ```
//! use lbsa_core::{AnyObject, Op, Pid, ObjId, Value};
//! use lbsa_runtime::process::{Protocol, Step};
//! use lbsa_runtime::system::System;
//! use lbsa_runtime::scheduler::RoundRobin;
//! use lbsa_runtime::outcome::FirstOutcome;
//!
//! #[derive(Debug)]
//! struct OneShot { inputs: Vec<Value> }
//!
//! impl Protocol for OneShot {
//!     type LocalState = bool; // proposed yet?
//!     fn num_processes(&self) -> usize { self.inputs.len() }
//!     fn init(&self, _pid: Pid) -> bool { false }
//!     fn pending_op(&self, pid: Pid, _s: &bool) -> (ObjId, Op) {
//!         (ObjId(0), Op::Propose(self.inputs[pid.index()]))
//!     }
//!     fn on_response(&self, _pid: Pid, _s: &bool, resp: Value) -> Step<bool> {
//!         Step::Decide(resp)
//!     }
//! }
//!
//! let protocol = OneShot { inputs: vec![Value::Int(10), Value::Int(20)] };
//! let objects = vec![AnyObject::consensus(2).unwrap()];
//! let mut sys = System::new(&protocol, &objects).unwrap();
//! let result = sys.run(&mut RoundRobin::new(), &mut FirstOutcome, 100).unwrap();
//! assert!(result.all_decided());
//! assert_eq!(sys.decision(Pid(0)), Some(Value::Int(10)));
//! assert_eq!(sys.decision(Pid(1)), Some(Value::Int(10)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod derived;
pub mod error;
pub mod outcome;
pub mod process;
pub mod scheduler;
pub mod script;
pub mod system;
pub mod trace;

pub use error::RuntimeError;
pub use process::{ProcStatus, Protocol, Step};
pub use system::{RunEnd, RunResult, System};
