//! The [`System`]: shared objects + processes, executed one atomic step at
//! a time.

use crate::error::RuntimeError;
use crate::outcome::OutcomeResolver;
use crate::process::{ProcStatus, Protocol, Step};
use crate::scheduler::{CrashPlan, Scheduler};
use crate::trace::{Trace, TraceEvent};
use lbsa_core::spec::ObjectSpec;
use lbsa_core::{AnyObject, AnyState, Pid, Value};
use lbsa_support::json::Json;
use lbsa_support::obs::Tracer;

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunEnd {
    /// No process is enabled any more: everyone decided, aborted, halted, or
    /// crashed.
    Quiescent,
    /// The step budget was exhausted with processes still enabled.
    MaxSteps,
    /// The scheduler declined to schedule anyone.
    SchedulerStopped,
}

impl RunEnd {
    /// A short machine-readable tag (used by trace events and reports).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            RunEnd::Quiescent => "quiescent",
            RunEnd::MaxSteps => "max-steps",
            RunEnd::SchedulerStopped => "scheduler-stopped",
        }
    }
}

/// Summary of a completed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Total number of atomic steps executed.
    pub steps: usize,
    /// Why the run ended.
    pub end: RunEnd,
    /// Each process's decision, if it decided.
    pub decisions: Vec<Option<Value>>,
    /// Pids that aborted.
    pub aborted: Vec<Pid>,
    /// Pids that crashed.
    pub crashed: Vec<Pid>,
}

impl RunResult {
    /// Returns `true` if every process decided.
    #[must_use]
    pub fn all_decided(&self) -> bool {
        self.decisions.iter().all(Option::is_some)
    }

    /// The set of distinct decided values, sorted.
    #[must_use]
    pub fn distinct_decisions(&self) -> Vec<Value> {
        let mut vs: Vec<Value> = self.decisions.iter().flatten().copied().collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// Returns `true` if every non-crashed process decided or aborted (i.e.
    /// the run reached a terminal configuration rather than running out of
    /// budget).
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.end == RunEnd::Quiescent
    }
}

/// A shared-memory system: a protocol, its processes, and the objects they
/// share.
///
/// The `System` owns the mutable execution state (object states, process
/// statuses, the trace); the protocol and object specifications are borrowed
/// immutably, so many systems can share them (the explorer clones cheap
/// snapshots of the mutable part only).
#[derive(Debug)]
pub struct System<'a, P: Protocol> {
    protocol: &'a P,
    objects: &'a [AnyObject],
    object_states: Vec<AnyState>,
    statuses: Vec<ProcStatus<P::LocalState>>,
    trace: Trace,
    steps: usize,
    record_trace: bool,
    tracer: Tracer,
}

impl<'a, P: Protocol> System<'a, P> {
    /// Creates a system in its initial configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoProcesses`] if the protocol declares zero
    /// processes.
    pub fn new(protocol: &'a P, objects: &'a [AnyObject]) -> Result<Self, RuntimeError> {
        let n = protocol.num_processes();
        if n == 0 {
            return Err(RuntimeError::NoProcesses);
        }
        Ok(System {
            protocol,
            objects,
            object_states: objects.iter().map(ObjectSpec::initial_state).collect(),
            statuses: (0..n)
                .map(|i| ProcStatus::Running(protocol.init(Pid(i))))
                .collect(),
            trace: Trace::new(),
            steps: 0,
            record_trace: true,
            tracer: Tracer::disabled(),
        })
    }

    /// Disables trace recording (for long benchmark runs where the trace
    /// would dominate memory).
    pub fn set_record_trace(&mut self, record: bool) {
        self.record_trace = record;
    }

    /// Routes `run.begin`/`run.end` observability events to `tracer`. This
    /// is the span-level tracing of [`lbsa_support::obs`] — distinct from
    /// the object-level [`System::trace`], which records the execution
    /// itself. Disabled by default.
    pub fn set_trace(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The number of processes.
    #[must_use]
    pub fn num_processes(&self) -> usize {
        self.statuses.len()
    }

    /// The protocol driving this system.
    #[must_use]
    pub fn protocol(&self) -> &P {
        self.protocol
    }

    /// Current status of each process.
    #[must_use]
    pub fn statuses(&self) -> &[ProcStatus<P::LocalState>] {
        &self.statuses
    }

    /// Current state of each object.
    #[must_use]
    pub fn object_states(&self) -> &[AnyState] {
        &self.object_states
    }

    /// The decision of `pid`, if it has decided.
    #[must_use]
    pub fn decision(&self, pid: Pid) -> Option<Value> {
        self.statuses
            .get(pid.index())
            .and_then(ProcStatus::decision)
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Total atomic steps executed so far.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The pids currently able to take a step, in increasing order.
    #[must_use]
    pub fn enabled_pids(&self) -> Vec<Pid> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_running())
            .map(|(i, _)| Pid(i))
            .collect()
    }

    /// Marks `pid` as crashed. A crashed process never steps again.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::PidOutOfRange`] for an unknown pid. Crashing
    /// a process that already decided/halted is a no-op (its output stands).
    pub fn crash(&mut self, pid: Pid) -> Result<(), RuntimeError> {
        let len = self.statuses.len();
        let status = self
            .statuses
            .get_mut(pid.index())
            .ok_or(RuntimeError::PidOutOfRange { pid, len })?;
        if status.is_running() {
            *status = ProcStatus::Crashed;
        }
        Ok(())
    }

    /// Executes one atomic step of `pid`: applies its pending operation and
    /// feeds the response to the protocol.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ProcessNotRunning`] if `pid` cannot step, and
    /// propagates specification and range errors.
    pub fn step_pid<R: OutcomeResolver>(
        &mut self,
        pid: Pid,
        resolver: &mut R,
    ) -> Result<(), RuntimeError> {
        let len = self.statuses.len();
        let local = match self.statuses.get(pid.index()) {
            None => return Err(RuntimeError::PidOutOfRange { pid, len }),
            Some(ProcStatus::Running(s)) => s.clone(),
            Some(_) => return Err(RuntimeError::ProcessNotRunning(pid)),
        };
        let (obj, op) = self.protocol.pending_op(pid, &local);
        let obj_len = self.objects.len();
        let spec = self
            .objects
            .get(obj.index())
            .ok_or(RuntimeError::ObjIdOutOfRange { obj, len: obj_len })?;
        let state = &self.object_states[obj.index()];
        let options = spec.outcomes(state, &op)?.into_vec();
        let idx = if options.len() == 1 {
            0
        } else {
            resolver.choose(pid, obj, &options).min(options.len() - 1)
        };
        let (response, next_state) = options.into_iter().nth(idx).expect("index clamped");
        self.object_states[obj.index()] = next_state;
        if self.record_trace {
            self.trace.push(TraceEvent {
                step: self.steps,
                pid,
                obj,
                op,
                response,
            });
        }
        self.steps += 1;
        self.statuses[pid.index()] = match self.protocol.on_response(pid, &local, response) {
            Step::Continue(next) => ProcStatus::Running(next),
            Step::Decide(v) => ProcStatus::Decided(v),
            Step::Abort => ProcStatus::Aborted,
            Step::Halt => ProcStatus::Halted,
        };
        Ok(())
    }

    /// Runs under `scheduler`, resolving object nondeterminism with
    /// `resolver`, for at most `max_steps` atomic steps.
    ///
    /// # Errors
    ///
    /// Propagates step errors (spec violations, range errors). Scheduling a
    /// disabled process is prevented by construction, not an error.
    pub fn run<S: Scheduler, R: OutcomeResolver>(
        &mut self,
        scheduler: &mut S,
        resolver: &mut R,
        max_steps: usize,
    ) -> Result<RunResult, RuntimeError> {
        self.run_with_crashes(scheduler, resolver, &CrashPlan::new(), max_steps)
    }

    /// Like [`System::run`], additionally applying a [`CrashPlan`].
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run_with_crashes<S: Scheduler, R: OutcomeResolver>(
        &mut self,
        scheduler: &mut S,
        resolver: &mut R,
        crashes: &CrashPlan,
        max_steps: usize,
    ) -> Result<RunResult, RuntimeError> {
        self.tracer.emit_with("run.begin", || {
            Json::object()
                .set("processes", self.statuses.len())
                .set("max_steps", max_steps)
                .set("at_step", self.steps)
        });
        let end = loop {
            // Apply due crashes.
            for i in 0..self.statuses.len() {
                if self.statuses[i].is_running() && crashes.is_crashed(Pid(i), self.steps) {
                    self.statuses[i] = ProcStatus::Crashed;
                }
            }
            let enabled = self.enabled_pids();
            if enabled.is_empty() {
                break RunEnd::Quiescent;
            }
            if self.steps >= max_steps {
                break RunEnd::MaxSteps;
            }
            let Some(pid) = scheduler.next_pid(&enabled) else {
                break RunEnd::SchedulerStopped;
            };
            self.step_pid(pid, resolver)?;
        };
        let result = self.result(end);
        self.tracer.emit_with("run.end", || {
            Json::object()
                .set("end", end.tag())
                .set("steps", result.steps)
                .set(
                    "decided",
                    result.decisions.iter().filter(|d| d.is_some()).count(),
                )
                .set("aborted", result.aborted.len())
                .set("crashed", result.crashed.len())
        });
        Ok(result)
    }

    fn result(&self, end: RunEnd) -> RunResult {
        RunResult {
            steps: self.steps,
            end,
            decisions: self.statuses.iter().map(ProcStatus::decision).collect(),
            aborted: self
                .statuses
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, ProcStatus::Aborted))
                .map(|(i, _)| Pid(i))
                .collect(),
            crashed: self
                .statuses
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, ProcStatus::Crashed))
                .map(|(i, _)| Pid(i))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::FirstOutcome;
    use crate::scheduler::{RoundRobin, Scripted, Solo};
    use lbsa_core::{ObjId, Op};

    /// Each process writes its input to its register, reads the other's
    /// register, and decides the max of what it saw (or its own input if the
    /// other register was still nil).
    #[derive(Debug)]
    struct WriteReadMax {
        inputs: Vec<i64>,
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum WrmState {
        Write,
        Read,
    }

    impl Protocol for WriteReadMax {
        type LocalState = WrmState;

        fn num_processes(&self) -> usize {
            self.inputs.len()
        }

        fn init(&self, _pid: Pid) -> WrmState {
            WrmState::Write
        }

        fn pending_op(&self, pid: Pid, state: &WrmState) -> (ObjId, Op) {
            match state {
                WrmState::Write => (
                    ObjId(pid.index()),
                    Op::Write(Value::Int(self.inputs[pid.index()])),
                ),
                WrmState::Read => (ObjId(1 - pid.index()), Op::Read),
            }
        }

        fn on_response(&self, pid: Pid, state: &WrmState, response: Value) -> Step<WrmState> {
            match state {
                WrmState::Write => Step::Continue(WrmState::Read),
                WrmState::Read => {
                    let own = self.inputs[pid.index()];
                    let seen = response.as_int().unwrap_or(own);
                    Step::Decide(Value::Int(own.max(seen)))
                }
            }
        }
    }

    fn regs(n: usize) -> Vec<AnyObject> {
        (0..n).map(|_| AnyObject::register()).collect()
    }

    #[test]
    fn round_robin_run_decides_max() {
        let p = WriteReadMax { inputs: vec![3, 8] };
        let objects = regs(2);
        let mut sys = System::new(&p, &objects).unwrap();
        let res = sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 100)
            .unwrap();
        assert!(res.all_decided());
        assert!(res.is_quiescent());
        // Both wrote before either read (round-robin), so both decide 8.
        assert_eq!(res.distinct_decisions(), vec![Value::Int(8)]);
        assert_eq!(res.steps, 4);
    }

    #[test]
    fn solo_run_never_sees_the_other() {
        let p = WriteReadMax { inputs: vec![3, 8] };
        let objects = regs(2);
        let mut sys = System::new(&p, &objects).unwrap();
        let res = sys
            .run(&mut Solo::new(Pid(0)), &mut FirstOutcome, 100)
            .unwrap();
        // p0 decided its own input; p1 never moved; scheduler stopped.
        assert_eq!(sys.decision(Pid(0)), Some(Value::Int(3)));
        assert_eq!(sys.decision(Pid(1)), None);
        assert_eq!(res.end, RunEnd::SchedulerStopped);
    }

    #[test]
    fn scripted_schedule_controls_interleaving() {
        let p = WriteReadMax { inputs: vec![3, 8] };
        let objects = regs(2);
        let mut sys = System::new(&p, &objects).unwrap();
        // p0 writes, p0 reads (sees nil -> decides own 3), then p1 runs.
        let mut sched = Scripted::new([Pid(0), Pid(0), Pid(1), Pid(1)]);
        let res = sys.run(&mut sched, &mut FirstOutcome, 100).unwrap();
        assert_eq!(sys.decision(Pid(0)), Some(Value::Int(3)));
        assert_eq!(sys.decision(Pid(1)), Some(Value::Int(8)));
        assert!(res.all_decided());
    }

    #[test]
    fn trace_projection_matches_execution() {
        let p = WriteReadMax { inputs: vec![1, 2] };
        let objects = regs(2);
        let mut sys = System::new(&p, &objects).unwrap();
        sys.run(&mut RoundRobin::new(), &mut FirstOutcome, 100)
            .unwrap();
        let h0 = sys.trace().object_history(ObjId(0));
        // Register 0: p0's write, then p1's read.
        assert_eq!(h0.len(), 2);
        assert_eq!(h0[0].op, Op::Write(Value::Int(1)));
        assert_eq!(h0[1].op, Op::Read);
        assert_eq!(h0[1].response, Value::Int(1));
    }

    #[test]
    fn crash_plan_silences_a_process() {
        let p = WriteReadMax { inputs: vec![3, 8] };
        let objects = regs(2);
        let mut sys = System::new(&p, &objects).unwrap();
        let mut crashes = CrashPlan::new();
        crashes.crash(Pid(1), 0);
        let res = sys
            .run_with_crashes(&mut RoundRobin::new(), &mut FirstOutcome, &crashes, 100)
            .unwrap();
        assert_eq!(res.crashed, vec![Pid(1)]);
        assert_eq!(
            sys.decision(Pid(0)),
            Some(Value::Int(3)),
            "p0 ran wait-free despite the crash"
        );
        assert_eq!(sys.decision(Pid(1)), None);
        assert!(res.is_quiescent());
    }

    #[test]
    fn max_steps_bounds_the_run() {
        let p = WriteReadMax { inputs: vec![1, 2] };
        let objects = regs(2);
        let mut sys = System::new(&p, &objects).unwrap();
        let res = sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 1)
            .unwrap();
        assert_eq!(res.end, RunEnd::MaxSteps);
        assert_eq!(res.steps, 1);
    }

    #[test]
    fn stepping_a_decided_process_errors() {
        let p = WriteReadMax { inputs: vec![1, 2] };
        let objects = regs(2);
        let mut sys = System::new(&p, &objects).unwrap();
        sys.run(&mut RoundRobin::new(), &mut FirstOutcome, 100)
            .unwrap();
        assert!(matches!(
            sys.step_pid(Pid(0), &mut FirstOutcome),
            Err(RuntimeError::ProcessNotRunning(Pid(0)))
        ));
        assert!(matches!(
            sys.step_pid(Pid(9), &mut FirstOutcome),
            Err(RuntimeError::PidOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_process_protocol_rejected() {
        let p = WriteReadMax { inputs: vec![] };
        let objects = regs(2);
        assert!(matches!(
            System::new(&p, &objects),
            Err(RuntimeError::NoProcesses)
        ));
    }

    #[test]
    fn traced_runs_emit_begin_and_end_events() {
        use lbsa_support::obs::MemorySink;
        let p = WriteReadMax { inputs: vec![1, 2] };
        let objects = regs(2);
        let mut sys = System::new(&p, &objects).unwrap();
        let sink = MemorySink::new();
        sys.set_trace(Tracer::new(sink.clone()));
        let res = sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 100)
            .unwrap();
        assert_eq!(sink.names(), vec!["run.begin", "run.end"]);
        let end = &sink.events()[1];
        assert_eq!(
            end.fields.get("end").and_then(Json::as_str),
            Some("quiescent")
        );
        assert_eq!(
            end.fields.get("steps").and_then(Json::as_i64),
            Some(i64::try_from(res.steps).unwrap())
        );
        assert_eq!(end.fields.get("decided").and_then(Json::as_i64), Some(2));
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let p = WriteReadMax { inputs: vec![1, 2] };
        let objects = regs(2);
        let mut sys = System::new(&p, &objects).unwrap();
        sys.set_record_trace(false);
        sys.run(&mut RoundRobin::new(), &mut FirstOutcome, 100)
            .unwrap();
        assert!(sys.trace().is_empty());
        assert_eq!(sys.steps(), 4);
    }
}
