//! Scripted straight-line protocols: each process executes a fixed list of
//! operations and halts (optionally deciding its last response).
//!
//! Script protocols are the workhorse of history generation and machinery
//! fuzzing: they turn "a workload" into a [`Protocol`] without writing a
//! state machine, their execution graphs are acyclic by construction, and
//! every response they observe is recorded in the trace — ideal inputs for
//! the linearizability checker and for cross-validating the explorer
//! against the sampler.

use crate::process::{Protocol, Step};
use lbsa_core::{ObjId, Op, Pid, Value};

/// What a scripted process does after its last operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScriptEnd {
    /// Halt (no output).
    Halt,
    /// Decide the response of the final operation.
    DecideLast,
}

/// A protocol in which process `i` executes `scripts[i]` operation by
/// operation, then halts or decides its last response.
///
/// # Examples
///
/// ```
/// use lbsa_runtime::script::{ScriptEnd, ScriptProtocol};
/// use lbsa_runtime::system::System;
/// use lbsa_runtime::scheduler::RoundRobin;
/// use lbsa_runtime::outcome::FirstOutcome;
/// use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let protocol = ScriptProtocol::new(
///     vec![
///         vec![(ObjId(0), Op::Write(Value::Int(7)))],
///         vec![(ObjId(0), Op::Read)],
///     ],
///     ScriptEnd::DecideLast,
/// )?;
/// let objects = vec![AnyObject::register()];
/// let mut sys = System::new(&protocol, &objects)?;
/// sys.run(&mut RoundRobin::new(), &mut FirstOutcome, 100)?;
/// assert_eq!(sys.decision(Pid(1)), Some(Value::Int(7)));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptProtocol {
    scripts: Vec<Vec<(ObjId, Op)>>,
    end: ScriptEnd,
}

impl ScriptProtocol {
    /// Creates a script protocol.
    ///
    /// # Errors
    ///
    /// Returns an error string if no process is given or any script is
    /// empty (a process must take at least one step to have a "last
    /// response").
    pub fn new(scripts: Vec<Vec<(ObjId, Op)>>, end: ScriptEnd) -> Result<Self, String> {
        if scripts.is_empty() {
            return Err("a script protocol needs at least one process".into());
        }
        if scripts.iter().any(Vec::is_empty) {
            return Err("every process script must contain at least one operation".into());
        }
        Ok(ScriptProtocol { scripts, end })
    }

    /// The scripts, indexed by pid.
    #[must_use]
    pub fn scripts(&self) -> &[Vec<(ObjId, Op)>] {
        &self.scripts
    }

    /// Total operations across all processes.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.scripts.iter().map(Vec::len).sum()
    }
}

impl Protocol for ScriptProtocol {
    type LocalState = usize; // program counter

    fn num_processes(&self) -> usize {
        self.scripts.len()
    }

    fn init(&self, _pid: Pid) -> usize {
        0
    }

    fn pending_op(&self, pid: Pid, pc: &usize) -> (ObjId, Op) {
        self.scripts[pid.index()][*pc]
    }

    fn on_response(&self, pid: Pid, pc: &usize, response: Value) -> Step<usize> {
        if pc + 1 < self.scripts[pid.index()].len() {
            Step::Continue(pc + 1)
        } else {
            match self.end {
                ScriptEnd::Halt => Step::Halt,
                ScriptEnd::DecideLast => Step::Decide(response),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::FirstOutcome;
    use crate::scheduler::RoundRobin;
    use crate::system::System;
    use lbsa_core::value::int;
    use lbsa_core::AnyObject;

    #[test]
    fn constructor_validation() {
        assert!(ScriptProtocol::new(vec![], ScriptEnd::Halt).is_err());
        assert!(ScriptProtocol::new(vec![vec![]], ScriptEnd::Halt).is_err());
        assert!(ScriptProtocol::new(vec![vec![(ObjId(0), Op::Read)]], ScriptEnd::Halt).is_ok());
    }

    #[test]
    fn scripts_run_to_completion_in_order() {
        let p = ScriptProtocol::new(
            vec![
                vec![
                    (ObjId(0), Op::Write(int(1))),
                    (ObjId(0), Op::Write(int(2))),
                    (ObjId(0), Op::Read),
                ],
                vec![(ObjId(0), Op::Read)],
            ],
            ScriptEnd::DecideLast,
        )
        .unwrap();
        assert_eq!(p.total_ops(), 4);
        let objects = vec![AnyObject::register()];
        let mut sys = System::new(&p, &objects).unwrap();
        let res = sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 100)
            .unwrap();
        assert!(res.is_quiescent());
        assert_eq!(sys.decision(Pid(0)), Some(int(2)));
        // Round-robin: p1's read lands after p0's first write.
        assert_eq!(sys.decision(Pid(1)), Some(int(1)));
    }

    #[test]
    fn halt_variant_produces_no_decisions() {
        let p = ScriptProtocol::new(vec![vec![(ObjId(0), Op::Write(int(1)))]], ScriptEnd::Halt)
            .unwrap();
        let objects = vec![AnyObject::register()];
        let mut sys = System::new(&p, &objects).unwrap();
        let res = sys
            .run(&mut RoundRobin::new(), &mut FirstOutcome, 100)
            .unwrap();
        assert!(res.is_quiescent());
        assert_eq!(sys.decision(Pid(0)), None);
    }
}
