//! Resolution of object nondeterminism.
//!
//! The 2-SA and (n,k)-SA objects are nondeterministic: one operation may
//! have several admissible `(response, next-state)` outcomes. During a
//! concrete run, something must pick one. An [`OutcomeResolver`] is that
//! something: deterministic-first for reproducible tests, seeded-random for
//! randomized testing, or scripted for targeted scenarios. (The explorer
//! does not use a resolver at all — it follows *every* branch.)

use lbsa_core::{AnyState, ObjId, Pid, Value};
use lbsa_support::rng::SmallRng;
use std::collections::VecDeque;

/// Chooses among the admissible outcomes of a nondeterministic operation.
pub trait OutcomeResolver {
    /// Returns the index (into `options`) of the chosen outcome.
    ///
    /// `options` is never empty. Implementations returning an out-of-range
    /// index are clamped by the caller to `options.len() - 1`.
    fn choose(&mut self, pid: Pid, obj: ObjId, options: &[(Value, AnyState)]) -> usize;
}

/// Always chooses the first admissible outcome. Fully deterministic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FirstOutcome;

impl OutcomeResolver for FirstOutcome {
    fn choose(&mut self, _pid: Pid, _obj: ObjId, _options: &[(Value, AnyState)]) -> usize {
        0
    }
}

/// Chooses uniformly at random with a seeded generator (reproducible).
///
/// # Examples
///
/// ```
/// use lbsa_runtime::outcome::RandomOutcome;
/// let r = RandomOutcome::seeded(42);
/// ```
#[derive(Clone, Debug)]
pub struct RandomOutcome {
    rng: SmallRng,
}

impl RandomOutcome {
    /// Creates a resolver from an explicit seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        RandomOutcome {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl OutcomeResolver for RandomOutcome {
    fn choose(&mut self, _pid: Pid, _obj: ObjId, options: &[(Value, AnyState)]) -> usize {
        self.rng.random_range(0..options.len())
    }
}

/// Follows a pre-recorded script of choices, then falls back to the first
/// outcome when the script runs out.
///
/// Used to replay a branch found by the explorer inside a concrete system.
#[derive(Clone, Debug, Default)]
pub struct ScriptedOutcome {
    script: VecDeque<usize>,
}

impl ScriptedOutcome {
    /// Creates a resolver that plays back `choices` in order.
    #[must_use]
    pub fn new<I: IntoIterator<Item = usize>>(choices: I) -> Self {
        ScriptedOutcome {
            script: choices.into_iter().collect(),
        }
    }

    /// Number of unconsumed scripted choices.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl OutcomeResolver for ScriptedOutcome {
    fn choose(&mut self, _pid: Pid, _obj: ObjId, options: &[(Value, AnyState)]) -> usize {
        self.script.pop_front().unwrap_or(0).min(options.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsa_core::spec::ObjectSpec;
    use lbsa_core::AnyObject;

    fn options() -> Vec<(Value, AnyState)> {
        let st = AnyObject::register().initial_state();
        vec![
            (Value::Int(1), st.clone()),
            (Value::Int(2), st.clone()),
            (Value::Int(3), st),
        ]
    }

    #[test]
    fn first_outcome_always_zero() {
        let mut r = FirstOutcome;
        for _ in 0..5 {
            assert_eq!(r.choose(Pid(0), ObjId(0), &options()), 0);
        }
    }

    #[test]
    fn random_outcome_is_reproducible_and_in_range() {
        let opts = options();
        let run = |seed| {
            let mut r = RandomOutcome::seeded(seed);
            (0..20)
                .map(|_| r.choose(Pid(0), ObjId(0), &opts))
                .collect::<Vec<_>>()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must reproduce the same choices");
        assert!(a.iter().all(|&i| i < opts.len()));
        let c = run(8);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn scripted_outcome_plays_then_falls_back() {
        let opts = options();
        let mut r = ScriptedOutcome::new([2, 1, 99]);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.choose(Pid(0), ObjId(0), &opts), 2);
        assert_eq!(r.choose(Pid(0), ObjId(0), &opts), 1);
        // Out-of-range entries clamp.
        assert_eq!(r.choose(Pid(0), ObjId(0), &opts), 2);
        // Exhausted script falls back to 0.
        assert_eq!(r.choose(Pid(0), ObjId(0), &opts), 0);
        assert_eq!(r.remaining(), 0);
    }
}
