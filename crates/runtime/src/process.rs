//! Protocols: deterministic per-process step machines, and process statuses.

use lbsa_core::{ObjId, Pid, Value};
use std::fmt::Debug;
use std::hash::Hash;

/// The effect of consuming a response, from the process's point of view.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Step<S> {
    /// Keep running with a new local state.
    Continue(S),
    /// Decide the given value and halt (the process has produced its
    /// output; it takes no further steps).
    Decide(Value),
    /// Abort and halt. Only the n-DAC problem's distinguished process ever
    /// aborts; for all other protocols this variant is unused.
    Abort,
    /// Halt without deciding (used by helper protocols whose processes have
    /// no output, e.g. history generators).
    Halt,
}

/// The status of a process inside a running system.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProcStatus<S> {
    /// The process is running and its next step is determined by its local
    /// state.
    Running(S),
    /// The process decided a value.
    Decided(Value),
    /// The process aborted (n-DAC distinguished process only).
    Aborted,
    /// The process halted without deciding.
    Halted,
    /// The process crashed: it never takes another step.
    Crashed,
}

impl<S> ProcStatus<S> {
    /// Returns `true` if the process can still take steps.
    #[must_use]
    pub fn is_running(&self) -> bool {
        matches!(self, ProcStatus::Running(_))
    }

    /// Returns the decided value, if the process has decided.
    #[must_use]
    pub fn decision(&self) -> Option<Value> {
        match self {
            ProcStatus::Decided(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the running local state, if any.
    #[must_use]
    pub fn local(&self) -> Option<&S> {
        match self {
            ProcStatus::Running(s) => Some(s),
            _ => None,
        }
    }
}

/// A deterministic asynchronous protocol for a fixed set of processes.
///
/// This is the paper's model of an *algorithm*: each process is a
/// deterministic automaton; in every local state it has exactly one pending
/// operation on one shared object ([`Protocol::pending_op`]), and its
/// transition on the operation's response ([`Protocol::on_response`]) is a
/// function. All scheduling nondeterminism lives in the
/// [`crate::scheduler::Scheduler`]; all object nondeterminism lives in the
/// [`crate::outcome::OutcomeResolver`].
///
/// Local states must be `Clone + Eq + Hash` so that whole configurations can
/// be deduplicated during exhaustive exploration, and protocols and their
/// local states must be `Sync`/`Send`: a protocol is pure data plus pure
/// functions, which lets the explorer expand disjoint parts of the frontier
/// from several threads at once.
///
/// # Determinism contract
///
/// For a fixed `pid` and local state, `pending_op` and `on_response` must be
/// pure functions. The explorer *relies* on this: it re-invokes them freely
/// while replaying branches, concurrently.
pub trait Protocol: Debug + Sync {
    /// Per-process local state.
    type LocalState: Clone + Eq + Hash + Debug + Send + Sync;

    /// Number of processes executing this protocol. Process ids are
    /// `Pid(0) .. Pid(num_processes() - 1)`.
    fn num_processes(&self) -> usize;

    /// The initial local state of process `pid`.
    fn init(&self, pid: Pid) -> Self::LocalState;

    /// The operation process `pid` applies in local state `state`: the
    /// target object and the operation.
    fn pending_op(&self, pid: Pid, state: &Self::LocalState) -> (ObjId, Op);

    /// Consume the response of the pending operation and transition.
    fn on_response(
        &self,
        pid: Pid,
        state: &Self::LocalState,
        response: Value,
    ) -> Step<Self::LocalState>;
}

use lbsa_core::Op;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_accessors() {
        let s: ProcStatus<u8> = ProcStatus::Running(3);
        assert!(s.is_running());
        assert_eq!(s.local(), Some(&3));
        assert_eq!(s.decision(), None);

        let s: ProcStatus<u8> = ProcStatus::Decided(Value::Int(1));
        assert!(!s.is_running());
        assert_eq!(s.decision(), Some(Value::Int(1)));
        assert_eq!(s.local(), None);

        for s in [
            ProcStatus::<u8>::Aborted,
            ProcStatus::Halted,
            ProcStatus::Crashed,
        ] {
            assert!(!s.is_running());
            assert_eq!(s.decision(), None);
        }
    }
}
