//! Protocols: deterministic per-process step machines, and process statuses.

use lbsa_core::{AnyState, ObjId, Pid, Value};
use std::fmt::Debug;
use std::hash::Hash;

/// The effect of consuming a response, from the process's point of view.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Step<S> {
    /// Keep running with a new local state.
    Continue(S),
    /// Decide the given value and halt (the process has produced its
    /// output; it takes no further steps).
    Decide(Value),
    /// Abort and halt. Only the n-DAC problem's distinguished process ever
    /// aborts; for all other protocols this variant is unused.
    Abort,
    /// Halt without deciding (used by helper protocols whose processes have
    /// no output, e.g. history generators).
    Halt,
}

/// The status of a process inside a running system.
///
/// The `Ord` derive gives statuses (and through them whole configurations)
/// a total *content* order, which is what symmetry reduction minimizes over
/// when picking a canonical orbit representative — interned ids cannot be
/// used for that, because interning order varies run to run.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcStatus<S> {
    /// The process is running and its next step is determined by its local
    /// state.
    Running(S),
    /// The process decided a value.
    Decided(Value),
    /// The process aborted (n-DAC distinguished process only).
    Aborted,
    /// The process halted without deciding.
    Halted,
    /// The process crashed: it never takes another step.
    Crashed,
}

impl<S> ProcStatus<S> {
    /// Returns `true` if the process can still take steps.
    #[must_use]
    pub fn is_running(&self) -> bool {
        matches!(self, ProcStatus::Running(_))
    }

    /// Returns the decided value, if the process has decided.
    #[must_use]
    pub fn decision(&self) -> Option<Value> {
        match self {
            ProcStatus::Decided(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the running local state, if any.
    #[must_use]
    pub fn local(&self) -> Option<&S> {
        match self {
            ProcStatus::Running(s) => Some(s),
            _ => None,
        }
    }
}

/// A deterministic asynchronous protocol for a fixed set of processes.
///
/// This is the paper's model of an *algorithm*: each process is a
/// deterministic automaton; in every local state it has exactly one pending
/// operation on one shared object ([`Protocol::pending_op`]), and its
/// transition on the operation's response ([`Protocol::on_response`]) is a
/// function. All scheduling nondeterminism lives in the
/// [`crate::scheduler::Scheduler`]; all object nondeterminism lives in the
/// [`crate::outcome::OutcomeResolver`].
///
/// Local states must be `Clone + Eq + Hash` so that whole configurations can
/// be deduplicated during exhaustive exploration, and protocols and their
/// local states must be `Sync`/`Send`: a protocol is pure data plus pure
/// functions, which lets the explorer expand disjoint parts of the frontier
/// from several threads at once.
///
/// # Determinism contract
///
/// For a fixed `pid` and local state, `pending_op` and `on_response` must be
/// pure functions. The explorer *relies* on this: it re-invokes them freely
/// while replaying branches, concurrently.
pub trait Protocol: Debug + Sync {
    /// Per-process local state.
    type LocalState: Clone + Eq + Hash + Debug + Send + Sync;

    /// Number of processes executing this protocol. Process ids are
    /// `Pid(0) .. Pid(num_processes() - 1)`.
    fn num_processes(&self) -> usize;

    /// The initial local state of process `pid`.
    fn init(&self, pid: Pid) -> Self::LocalState;

    /// The operation process `pid` applies in local state `state`: the
    /// target object and the operation.
    fn pending_op(&self, pid: Pid, state: &Self::LocalState) -> (ObjId, Op);

    /// Consume the response of the pending operation and transition.
    fn on_response(
        &self,
        pid: Pid,
        state: &Self::LocalState,
        response: Value,
    ) -> Step<Self::LocalState>;
}

use lbsa_core::Op;

/// Opt-in declaration that a protocol is **symmetric under process-id
/// permutation** — the hook the explorer's symmetry reduction keys off.
///
/// A protocol implements this trait to declare which processes are
/// *interchangeable*: [`Symmetry::pid_classes`] partitions the pids into
/// classes, and any permutation `π` that maps each class onto itself must
/// satisfy the **equivariance law**
///
/// ```text
/// step(π · C, π(p), o)  ≃  π · step(C, p, o)
/// ```
///
/// where `π · C` permutes a configuration by relocating process `i`'s
/// status to slot `π(i)` (mapping its local state through
/// [`Symmetry::permute_local`]) and rewriting every object state through
/// [`Symmetry::permute_object_state`] — i.e. permuting the processes of an
/// execution yields another execution of the same protocol, step for step.
/// `≃` is equality up to the order in which a nondeterministic object lists
/// its outcomes; the explorer's witness de-canonicalization matches
/// successors by configuration content, never by outcome index, precisely
/// so that sorted-set object states (whose outcome order is not equivariant)
/// stay admissible.
///
/// In practice the law holds when processes in one class run identical code
/// with identical inputs and any pid-derived identity they write into an
/// object (a label, a port) is permuted consistently by
/// `permute_object_state`. Distinguished roles — e.g. the n-DAC process
/// allowed to abort — must be singleton classes, which also keeps every
/// checker predicate that names a specific pid orbit-invariant.
///
/// Two symmetry axes exist in the paper's protocols: pid symmetry (this
/// trait's permutations) and value symmetry (renaming input values).
/// [`Symmetry::value_symmetric`] declares the latter; the current
/// canonicalization exploits pid symmetry only, so the flag is advisory
/// until a value-canonicalization pass lands.
pub trait Symmetry: Protocol {
    /// Partition of the pids into interchangeability classes: processes `i`
    /// and `j` may be swapped iff `pid_classes()[i] == pid_classes()[j]`.
    /// Must return exactly [`Protocol::num_processes`] entries. Returning
    /// pairwise-distinct classes declares the trivial group (no reduction).
    fn pid_classes(&self) -> Vec<u32>;

    /// Applies pid permutation `perm` (`perm[i]` is the new pid of process
    /// `i`) to a local state. The default is the identity — correct whenever
    /// local states never mention pids, which is the common case.
    fn permute_local(&self, state: &Self::LocalState, perm: &[usize]) -> Self::LocalState {
        let _ = perm;
        state.clone()
    }

    /// Applies pid permutation `perm` to the state of object `obj`. The
    /// default is the identity — correct whenever object states carry no
    /// pid-derived structure (registers, consensus, 2-SA). Objects indexed
    /// by per-process labels (n-PAC) must permute that structure here.
    fn permute_object_state(&self, obj: ObjId, state: &AnyState, perm: &[usize]) -> AnyState {
        let _ = (obj, perm);
        state.clone()
    }

    /// Declares that the protocol is additionally symmetric under renaming
    /// of input values. Advisory: the explorer does not yet canonicalize
    /// over value permutations.
    fn value_symmetric(&self) -> bool {
        false
    }
}

/// Pid classes grouping processes with equal entries of `inputs` — the
/// common [`Symmetry::pid_classes`] answer for input-parameterized protocols
/// whose per-process behaviour depends only on the input value (each class
/// is labelled by the first position carrying that input).
///
/// # Panics
///
/// Panics if more than `u32::MAX` processes are given.
#[must_use]
pub fn classes_by_input<T: PartialEq>(inputs: &[T]) -> Vec<u32> {
    inputs
        .iter()
        .map(|v| {
            let first = inputs.iter().position(|w| w == v).expect("v is in inputs");
            u32::try_from(first).expect("process count fits in u32")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_accessors() {
        let s: ProcStatus<u8> = ProcStatus::Running(3);
        assert!(s.is_running());
        assert_eq!(s.local(), Some(&3));
        assert_eq!(s.decision(), None);

        let s: ProcStatus<u8> = ProcStatus::Decided(Value::Int(1));
        assert!(!s.is_running());
        assert_eq!(s.decision(), Some(Value::Int(1)));
        assert_eq!(s.local(), None);

        for s in [
            ProcStatus::<u8>::Aborted,
            ProcStatus::Halted,
            ProcStatus::Crashed,
        ] {
            assert!(!s.is_running());
            assert_eq!(s.decision(), None);
        }
    }
}
