//! Runtime error types.

use lbsa_core::{ObjId, Pid, SpecError};
use std::error::Error;
use std::fmt;

/// An error raised while executing a protocol on a [`crate::system::System`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// An object specification rejected an operation.
    Spec(SpecError),
    /// A process referenced an object id outside the system.
    ObjIdOutOfRange {
        /// The offending object id.
        obj: ObjId,
        /// Number of objects in the system.
        len: usize,
    },
    /// A step was requested for a process id outside the system.
    PidOutOfRange {
        /// The offending process id.
        pid: Pid,
        /// Number of processes in the system.
        len: usize,
    },
    /// A step was requested for a process that is not running (it has
    /// decided, aborted, halted, or crashed).
    ProcessNotRunning(Pid),
    /// A protocol declared zero processes.
    NoProcesses,
    /// A replayed step chose an outcome index the object does not admit —
    /// the schedule being replayed does not belong to this protocol/object
    /// combination.
    OutcomeOutOfRange {
        /// The object the operation was applied to.
        obj: ObjId,
        /// The outcome index requested.
        outcome: usize,
        /// Number of admissible outcomes.
        len: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Spec(e) => write!(f, "object specification error: {e}"),
            RuntimeError::ObjIdOutOfRange { obj, len } => {
                write!(f, "object id {obj} out of range (system has {len} objects)")
            }
            RuntimeError::PidOutOfRange { pid, len } => {
                write!(
                    f,
                    "process id {pid} out of range (system has {len} processes)"
                )
            }
            RuntimeError::ProcessNotRunning(pid) => {
                write!(f, "process {pid} is not running")
            }
            RuntimeError::NoProcesses => write!(f, "protocol declares zero processes"),
            RuntimeError::OutcomeOutOfRange { obj, outcome, len } => {
                write!(
                    f,
                    "outcome index {outcome} out of range on {obj} ({len} admissible outcomes)"
                )
            }
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for RuntimeError {
    fn from(e: SpecError) -> Self {
        RuntimeError::Spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RuntimeError::from(SpecError::ZeroLabel);
        assert!(e.to_string().contains("specification"));
        assert!(Error::source(&e).is_some());
        let e = RuntimeError::ProcessNotRunning(Pid(3));
        assert!(e.to_string().contains("p3"));
        assert!(Error::source(&e).is_none());
    }
}
