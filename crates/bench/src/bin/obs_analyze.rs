//! `obs_analyze` — the trace-analysis observatory.
//!
//! Ingests the `reports/*.trace.jsonl` artifacts the experiment harness
//! writes (see `exp_report --validate-trace` for the line format) and
//! reconstructs the run they describe:
//!
//! * **per-worker utilization timeline** — a text Gantt built from the
//!   work-stealing `ws.expand` progress beats, plus a steal-attribution
//!   table (who stole from whom, and how often nobody had work);
//! * **phase critical path** — the most expensive BFS levels of a
//!   level-sync trace, or the longest-running worker of a work-stealing
//!   trace;
//! * **steal-storm and underparallelized-level detection** — the two
//!   pathologies that silently burn wall clock: workers sweeping empty
//!   deques, and wide levels that never crossed the parallel gate;
//! * `--summary-json` — the same analysis as one machine-readable object.
//!
//! `--regress <BENCH_history.jsonl>` switches to perf-regression mode: the
//! latest history entry (appended by `perf_smoke`) is compared against the
//! trailing median of earlier same-host entries, with a noise band, and
//! regressions are listed with their factors. The exit code is nonzero on
//! regression so CI can surface it — wire it as an *advisory* step.
//!
//! Usage:
//!   obs_analyze <trace.jsonl | dir> [--summary-json]
//!   obs_analyze --regress <BENCH_history.jsonl> [--noise 0.25] [--window 10]

use lbsa_support::json::Json;
use std::path::{Path, PathBuf};

/// Columns in the text Gantt.
const GANTT_WIDTH: usize = 60;

/// Default fractional noise band for `--regress`.
const DEFAULT_NOISE: f64 = 0.25;

/// Default trailing-window length (history entries) for `--regress`.
const DEFAULT_WINDOW: usize = 10;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: obs_analyze <trace.jsonl | dir> [--summary-json]");
        eprintln!("       obs_analyze --regress <BENCH_history.jsonl> [--noise F] [--window N]");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--regress") {
        let path = args
            .iter()
            .position(|a| a == "--regress")
            .and_then(|i| args.get(i + 1))
            .unwrap_or_else(|| {
                eprintln!("--regress needs a history file");
                std::process::exit(2);
            });
        let noise = flag_value(&args, "--noise").unwrap_or(DEFAULT_NOISE);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let window = flag_value(&args, "--window").map_or(DEFAULT_WINDOW, |w| w as usize);
        match regress_mode(Path::new(path), noise, window) {
            Ok(0) => {}
            Ok(n) => {
                eprintln!("obs_analyze: {n} regression(s) beyond the noise band");
                std::process::exit(1);
            }
            Err(err) => {
                eprintln!("obs_analyze: {err}");
                std::process::exit(2);
            }
        }
        return;
    }

    let summary_json = args.iter().any(|a| a == "--summary-json");
    let target = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| {
            eprintln!("obs_analyze: no trace file or directory given");
            std::process::exit(2);
        });
    let traces = collect_traces(Path::new(target));
    if traces.is_empty() {
        eprintln!("obs_analyze: no *.trace.jsonl under {target}");
        std::process::exit(2);
    }
    let mut summaries = Vec::new();
    for path in &traces {
        let events = match load_trace(path) {
            Ok(e) => e,
            Err(err) => {
                eprintln!("obs_analyze: {}: {err}", path.display());
                std::process::exit(2);
            }
        };
        let summary = analyze_trace(path, &events);
        if !summary_json {
            render_human(&summary, &events);
        }
        summaries.push(summary);
    }
    if summary_json {
        let doc = if summaries.len() == 1 {
            summaries.pop().expect("one summary")
        } else {
            Json::object().set("traces", Json::Arr(summaries))
        };
        println!("{}", doc.pretty());
    }
}

/// Parses `--flag <number>` out of the argument list.
fn flag_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// A single trace file, or every `*.trace.jsonl` in a directory (sorted).
fn collect_traces(target: &Path) -> Vec<PathBuf> {
    if target.is_dir() {
        let mut found: Vec<PathBuf> = std::fs::read_dir(target)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".trace.jsonl"))
            })
            .collect();
        found.sort();
        found
    } else {
        vec![target.to_path_buf()]
    }
}

/// Reads one JSONL trace into a vector of event objects, streaming one
/// line at a time so peak RSS holds the parsed events but never the whole
/// raw file (traces can be hundreds of MB of text for a few MB of events).
fn load_trace(path: &Path) -> Result<Vec<Json>, String> {
    use std::io::BufRead;
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let mut reader = std::io::BufReader::new(file);
    let mut events = Vec::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        let read = reader.read_line(&mut line).map_err(|e| e.to_string())?;
        if read == 0 {
            break;
        }
        lineno += 1;
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line.trim_end()).map_err(|e| format!("line {lineno}: {e}"))?;
        events.push(doc);
    }
    Ok(events)
}

fn field_i64(e: &Json, key: &str) -> Option<i64> {
    e.get(key).and_then(Json::as_i64)
}

fn field_f64(e: &Json, key: &str) -> Option<f64> {
    e.get(key).and_then(Json::as_f64)
}

fn name_of(e: &Json) -> &str {
    e.get("event").and_then(Json::as_str).unwrap_or("")
}

/// Everything `obs_analyze` reconstructs from one trace, as the
/// `--summary-json` object (the human renderer reads the same structure).
fn analyze_trace(path: &Path, events: &[Json]) -> Json {
    let begin = events.iter().find(|e| name_of(e) == "explore.begin");
    let frontier = begin
        .and_then(|e| e.get("frontier"))
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    let threads = begin.and_then(|e| field_i64(e, "threads")).unwrap_or(0);
    let t0 = events.iter().filter_map(|e| field_i64(e, "t_us")).min();
    let t1 = events.iter().filter_map(|e| field_i64(e, "t_us")).max();
    let span_us = match (t0, t1) {
        (Some(a), Some(b)) => b - a,
        _ => 0,
    };

    let mut doc = Json::object()
        .set("trace", path.display().to_string())
        .set("events", events.len())
        .set("frontier", frontier)
        .set("threads", threads)
        .set("span_us", span_us);

    let workers = worker_rows(events);
    if !workers.is_empty() {
        doc = doc
            .set("workers", Json::Arr(workers.clone()))
            .set("worker_imbalance", imbalance(&workers))
            .set("steal_storm", steal_storm(&workers))
            .set("critical_path", ws_critical_path(events, &workers));
    }
    let levels = level_rows(events);
    if !levels.is_empty() {
        doc = doc.set("levels", level_analysis(&levels, threads));
        if workers.is_empty() {
            doc = doc.set("critical_path", level_critical_path(&levels));
        }
    }
    if let Some(sampling) = sampling_analysis(events) {
        doc = doc.set("sampling", sampling);
    }
    doc
}

/// One row per worker, merged from the assembly-time `ws.worker` summaries
/// and the steal attribution of the in-run `ws.steal` events.
fn worker_rows(events: &[Json]) -> Vec<Json> {
    let mut rows: Vec<Json> = Vec::new();
    for e in events.iter().filter(|e| name_of(e) == "ws.worker") {
        let Some(w) = field_i64(e, "worker") else {
            continue;
        };
        let mut victims = Json::object();
        let mut hits = 0i64;
        for s in events.iter().filter(|s| {
            name_of(s) == "ws.steal"
                && field_i64(s, "worker") == Some(w)
                && s.get("outcome").and_then(Json::as_str) == Some("hit")
        }) {
            if let Some(v) = field_i64(s, "victim") {
                let key = v.to_string();
                let n = victims.get(&key).and_then(Json::as_i64).unwrap_or(0);
                victims = victims.set(&key, n + 1);
                hits += 1;
            }
        }
        let busy = field_i64(e, "busy_us").unwrap_or(0);
        let idle = field_i64(e, "idle_us").unwrap_or(0);
        let accounted = busy + idle;
        let utilization = if accounted > 0 {
            busy as f64 / accounted as f64
        } else {
            0.0
        };
        let mut row = Json::object()
            .set("worker", w)
            .set("expanded", field_i64(e, "expanded").unwrap_or(0))
            .set("transitions", field_i64(e, "transitions").unwrap_or(0))
            .set("steals", field_i64(e, "steals").unwrap_or(0))
            .set("steal_fails", field_i64(e, "steal_fails").unwrap_or(0))
            .set("local_hits", field_i64(e, "local_hits").unwrap_or(0))
            .set(
                "max_deque_depth",
                field_i64(e, "max_deque_depth").unwrap_or(0),
            )
            .set("idle_spins", field_i64(e, "idle_spins").unwrap_or(0))
            // Lock-free-engine counters; absent (0) in pre-deque traces.
            .set("park_count", field_i64(e, "park_count").unwrap_or(0))
            .set("parked_us", field_i64(e, "parked_us").unwrap_or(0))
            .set("deque_grows", field_i64(e, "deque_grows").unwrap_or(0))
            .set("busy_us", busy)
            .set("idle_us", idle)
            .set("utilization", utilization);
        if hits > 0 {
            row = row.set("victims", victims);
        }
        rows.push(row);
    }
    rows
}

/// Busiest worker's expanded count over the per-worker mean.
fn imbalance(workers: &[Json]) -> f64 {
    let counts: Vec<i64> = workers
        .iter()
        .map(|w| field_i64(w, "expanded").unwrap_or(0))
        .collect();
    let total: i64 = counts.iter().sum();
    if counts.is_empty() || total == 0 {
        return 1.0;
    }
    let max = *counts.iter().max().expect("nonempty") as f64;
    max / (total as f64 / counts.len() as f64)
}

/// Steal-storm detection: sweeps that found nothing, per expanded task.
/// A storm means workers spent their time probing empty deques — the
/// workload is too narrow (or too serialized) for the worker count.
///
/// Parked workers don't storm: a failed sweep that ends in a timed park
/// burns microseconds of CPU, not a spin loop, so only the spin/yield
/// share of the failures (`fails − parks`) counts toward detection.
/// Pre-backoff traces carry no `park_count` and degrade to the old
/// all-fails-burn-CPU reading.
fn steal_storm(workers: &[Json]) -> Json {
    let fails: i64 = workers
        .iter()
        .map(|w| field_i64(w, "steal_fails").unwrap_or(0))
        .sum();
    let expanded: i64 = workers
        .iter()
        .map(|w| field_i64(w, "expanded").unwrap_or(0))
        .sum();
    let spins: i64 = workers
        .iter()
        .map(|w| field_i64(w, "idle_spins").unwrap_or(0))
        .max()
        .unwrap_or(0);
    let parks: i64 = workers
        .iter()
        .map(|w| field_i64(w, "park_count").unwrap_or(0))
        .sum();
    let burning = (fails - parks).max(0);
    let fails_per_task = fails as f64 / expanded.max(1) as f64;
    let burning_per_task = burning as f64 / expanded.max(1) as f64;
    Json::object()
        .set("steal_fails", fails)
        .set("parked", parks)
        .set("fails_per_task", fails_per_task)
        .set("burning_per_task", burning_per_task)
        .set("max_idle_spins", spins)
        .set("detected", burning_per_task > 5.0 && burning > 50)
}

/// The work-stealing critical path: the worker whose span (first beat to
/// `ws.done`) is longest bounds the run's wall clock.
fn ws_critical_path(events: &[Json], workers: &[Json]) -> Json {
    let mut critical: Option<(i64, i64, f64)> = None; // (worker, span, util)
    for w in workers {
        let Some(id) = field_i64(w, "worker") else {
            continue;
        };
        let times: Vec<i64> = events
            .iter()
            .filter(|e| {
                (name_of(e) == "ws.expand" || name_of(e) == "ws.done")
                    && field_i64(e, "worker") == Some(id)
            })
            .filter_map(|e| field_i64(e, "t_us"))
            .collect();
        let (Some(&first), Some(&last)) = (times.iter().min(), times.iter().max()) else {
            continue;
        };
        let span = last - first;
        let util = field_f64(w, "utilization").unwrap_or(0.0);
        if critical.is_none_or(|(_, best, _)| span > best) {
            critical = Some((id, span, util));
        }
    }
    match critical {
        Some((worker, span_us, utilization)) => Json::object()
            .set("kind", "worker")
            .set("worker", worker)
            .set("span_us", span_us)
            .set("utilization", utilization),
        None => Json::object().set("kind", "worker").set("span_us", 0i64),
    }
}

/// One row per `level` event, in trace order.
fn level_rows(events: &[Json]) -> Vec<Json> {
    events
        .iter()
        .filter(|e| name_of(e) == "level")
        .cloned()
        .collect()
}

/// Level-sync analysis: phase split, widest level, and the wide levels
/// that stayed sequential (underparallelized under a multi-thread run).
fn level_analysis(levels: &[Json], threads: i64) -> Json {
    let count = levels.len();
    let parallel = levels
        .iter()
        .filter(|l| l.get("parallel").and_then(Json::as_bool) == Some(true))
        .count();
    let expand_us: i64 = levels
        .iter()
        .filter_map(|l| field_i64(l, "expand_us"))
        .sum();
    let merge_us: i64 = levels.iter().filter_map(|l| field_i64(l, "merge_us")).sum();
    let widest = levels
        .iter()
        .filter_map(|l| field_i64(l, "width"))
        .max()
        .unwrap_or(0);
    let mut under = Vec::new();
    for l in levels {
        let width = field_i64(l, "width").unwrap_or(0);
        let is_parallel = l.get("parallel").and_then(Json::as_bool) == Some(true);
        if threads > 1 && !is_parallel && width >= threads * 2 {
            under.push(
                Json::object()
                    .set("level", field_i64(l, "level").unwrap_or(-1))
                    .set("width", width),
            );
        }
    }
    Json::object()
        .set("count", count)
        .set("parallel", parallel)
        .set("widest", widest)
        .set("expand_us", expand_us)
        .set("merge_us", merge_us)
        .set("underparallelized", Json::Arr(under))
}

/// Level-sync critical path: the run is one sequential chain of levels, so
/// the heaviest levels *are* the critical path. Reports the top 3 by
/// elapsed time with their share of the total.
fn level_critical_path(levels: &[Json]) -> Json {
    let total: i64 = levels
        .iter()
        .filter_map(|l| field_i64(l, "elapsed_us"))
        .sum();
    let mut ranked: Vec<(i64, i64)> = levels
        .iter()
        .map(|l| {
            (
                field_i64(l, "elapsed_us").unwrap_or(0),
                field_i64(l, "level").unwrap_or(-1),
            )
        })
        .collect();
    ranked.sort_unstable_by(|a, b| b.cmp(a));
    let top: Vec<Json> = ranked
        .iter()
        .take(3)
        .map(|&(elapsed, level)| {
            Json::object()
                .set("level", level)
                .set("elapsed_us", elapsed)
                .set(
                    "share",
                    if total > 0 {
                        elapsed as f64 / total as f64
                    } else {
                        0.0
                    },
                )
        })
        .collect();
    Json::object()
        .set("kind", "levels")
        .set("total_us", total)
        .set("top", Json::Arr(top))
}

/// Aggregates `sample.*` events when the trace contains sampling sweeps.
fn sampling_analysis(events: &[Json]) -> Option<Json> {
    let ends: Vec<&Json> = events
        .iter()
        .filter(|e| name_of(e) == "sample.end")
        .collect();
    if ends.is_empty() {
        return None;
    }
    let runs: i64 = ends.iter().filter_map(|e| field_i64(e, "runs")).sum();
    let violations: i64 = ends.iter().filter_map(|e| field_i64(e, "violations")).sum();
    let batches = events
        .iter()
        .filter(|e| name_of(e) == "sample.batch")
        .count();
    Some(
        Json::object()
            .set("sweeps", ends.len())
            .set("runs", runs)
            .set("batches", batches)
            .set("violations", violations),
    )
}

/// Maps a utilization fraction to a Gantt cell.
fn shade(util: f64) -> char {
    if util > 0.9 {
        '█'
    } else if util > 0.6 {
        '▓'
    } else if util > 0.3 {
        '▒'
    } else if util > 0.0 {
        '░'
    } else {
        '·'
    }
}

/// Renders the per-worker utilization Gantt from the `ws.expand` beats:
/// each row is one worker, each column a slice of the run's wall clock,
/// shaded by the fraction of that slice the worker spent expanding.
fn render_gantt(events: &[Json], workers: &[Json]) -> Vec<String> {
    let t0 = events
        .iter()
        .filter_map(|e| field_i64(e, "t_us"))
        .min()
        .unwrap_or(0);
    let t1 = events
        .iter()
        .filter_map(|e| field_i64(e, "t_us"))
        .max()
        .unwrap_or(0);
    let span = (t1 - t0).max(1);
    let col_of = |t: i64| -> usize {
        let c = ((t - t0) * GANTT_WIDTH as i64 / span).max(0) as usize;
        c.min(GANTT_WIDTH - 1)
    };
    let mut rows = Vec::new();
    for w in workers {
        let Some(id) = field_i64(w, "worker") else {
            continue;
        };
        let mut beats: Vec<(i64, i64)> = events
            .iter()
            .filter(|e| {
                (name_of(e) == "ws.expand" || name_of(e) == "ws.done")
                    && field_i64(e, "worker") == Some(id)
            })
            .filter_map(|e| Some((field_i64(e, "t_us")?, field_i64(e, "busy_us").unwrap_or(0))))
            .collect();
        beats.sort_unstable();
        let mut cells = vec!['·'; GANTT_WIDTH];
        for pair in beats.windows(2) {
            let (ta, busy_a) = pair[0];
            let (tb, busy_b) = pair[1];
            let wall = (tb - ta).max(1);
            let util = ((busy_b - busy_a) as f64 / wall as f64).clamp(0.0, 1.0);
            for cell in cells.iter_mut().take(col_of(tb) + 1).skip(col_of(ta)) {
                *cell = shade(util);
            }
        }
        // A lone beat (tiny run) still shows up as one active cell.
        if beats.len() == 1 {
            cells[col_of(beats[0].0)] = shade(1.0);
        }
        rows.push(format!(
            "  worker {id} {}",
            cells.iter().collect::<String>()
        ));
    }
    rows
}

/// Human-readable report for one analyzed trace.
fn render_human(summary: &Json, events: &[Json]) {
    let trace = summary.get("trace").and_then(Json::as_str).unwrap_or("?");
    println!("== {trace}");
    println!(
        "   {} events, frontier {}, {} threads, span {}us",
        summary.get("events").and_then(Json::as_i64).unwrap_or(0),
        summary
            .get("frontier")
            .and_then(Json::as_str)
            .unwrap_or("?"),
        summary.get("threads").and_then(Json::as_i64).unwrap_or(0),
        summary.get("span_us").and_then(Json::as_i64).unwrap_or(0),
    );
    if let Some(workers) = summary.get("workers").and_then(Json::as_arr) {
        println!("-- per-worker utilization (busy fraction per time slice)");
        for row in render_gantt(events, workers) {
            println!("{row}");
        }
        println!("-- steal attribution");
        for w in workers {
            let victims = w
                .get("victims")
                .map(|v| format!(" victims {}", v.compact()))
                .unwrap_or_default();
            println!(
                "  worker {}: {} expanded, {} local, {} stolen, {} failed sweeps, util {:.0}%{victims}",
                field_i64(w, "worker").unwrap_or(-1),
                field_i64(w, "expanded").unwrap_or(0),
                field_i64(w, "local_hits").unwrap_or(0),
                field_i64(w, "steals").unwrap_or(0),
                field_i64(w, "steal_fails").unwrap_or(0),
                100.0 * field_f64(w, "utilization").unwrap_or(0.0),
            );
        }
        if let Some(imb) = summary.get("worker_imbalance").and_then(Json::as_f64) {
            println!("  imbalance {imb:.2}x (busiest worker vs mean)");
        }
        if let Some(storm) = summary.get("steal_storm") {
            if storm.get("detected").and_then(Json::as_bool) == Some(true) {
                println!(
                    "  !! steal storm: {} failed sweeps ({:.1} per task)",
                    storm.get("steal_fails").and_then(Json::as_i64).unwrap_or(0),
                    storm
                        .get("fails_per_task")
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0),
                );
            }
        }
    }
    if let Some(levels) = summary.get("levels") {
        println!(
            "-- levels: {} total, {} parallel, widest {}, expand {}us / merge {}us",
            levels.get("count").and_then(Json::as_i64).unwrap_or(0),
            levels.get("parallel").and_then(Json::as_i64).unwrap_or(0),
            levels.get("widest").and_then(Json::as_i64).unwrap_or(0),
            levels.get("expand_us").and_then(Json::as_i64).unwrap_or(0),
            levels.get("merge_us").and_then(Json::as_i64).unwrap_or(0),
        );
        if let Some(under) = levels.get("underparallelized").and_then(Json::as_arr) {
            for l in under {
                println!(
                    "  !! underparallelized level {} (width {} stayed sequential)",
                    field_i64(l, "level").unwrap_or(-1),
                    field_i64(l, "width").unwrap_or(0),
                );
            }
        }
    }
    if let Some(cp) = summary.get("critical_path") {
        match cp.get("kind").and_then(Json::as_str) {
            Some("worker") => println!(
                "-- critical path: worker {} ({}us span, util {:.0}%)",
                cp.get("worker").and_then(Json::as_i64).unwrap_or(-1),
                cp.get("span_us").and_then(Json::as_i64).unwrap_or(0),
                100.0 * cp.get("utilization").and_then(Json::as_f64).unwrap_or(0.0),
            ),
            Some("levels") => {
                if let Some(top) = cp.get("top").and_then(Json::as_arr) {
                    let parts: Vec<String> = top
                        .iter()
                        .map(|l| {
                            format!(
                                "level {} ({}us, {:.0}%)",
                                field_i64(l, "level").unwrap_or(-1),
                                field_i64(l, "elapsed_us").unwrap_or(0),
                                100.0 * field_f64(l, "share").unwrap_or(0.0),
                            )
                        })
                        .collect();
                    println!("-- critical path: {}", parts.join(", "));
                }
            }
            _ => {}
        }
    }
    if let Some(s) = summary.get("sampling") {
        println!(
            "-- sampling: {} sweeps, {} runs, {} violations",
            s.get("sweeps").and_then(Json::as_i64).unwrap_or(0),
            s.get("runs").and_then(Json::as_i64).unwrap_or(0),
            s.get("violations").and_then(Json::as_i64).unwrap_or(0),
        );
    }
}

// ---------------------------------------------------------------------------
// --regress: perf-history comparison
// ---------------------------------------------------------------------------

/// For a metric key, `true` when a *larger* value is worse (latencies),
/// `false` when smaller is worse (speedups/throughput), `None` when the
/// key carries no quality direction (counts, core numbers).
fn higher_is_worse(key: &str) -> Option<bool> {
    if key.ends_with("_ns") || key.ends_with("_us") {
        Some(true)
    } else if key.contains("speedup") || key.contains("ratio") || key.contains("per_sec") {
        Some(false)
    } else {
        None
    }
}

/// Median of a non-empty slice (mean of the middle pair for even lengths).
fn median(values: &mut [f64]) -> f64 {
    values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN metrics"));
    let n = values.len();
    if n.is_multiple_of(2) {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    } else {
        values[n / 2]
    }
}

/// One directional comparison: `Some(factor)` when `latest` is worse than
/// `baseline` by more than the noise band, where `factor` is how many
/// times worse.
fn regression_factor(key: &str, latest: f64, baseline: f64, noise: f64) -> Option<f64> {
    let worse_up = higher_is_worse(key)?;
    if baseline <= 0.0 {
        return None;
    }
    let factor = if worse_up {
        latest / baseline
    } else {
        baseline / latest.max(f64::MIN_POSITIVE)
    };
    (factor > 1.0 + noise).then_some(factor)
}

/// Loads the history, compares the newest entry against the trailing
/// median of up to `window` earlier entries with the same host fingerprint
/// and core count, and prints the verdict. Returns the regression count.
fn regress_mode(path: &Path, noise: f64, window: usize) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let entries: Vec<Json> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(Json::parse)
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let Some(latest) = entries.last() else {
        println!("perf history: empty, nothing to compare");
        return Ok(0);
    };
    let host = latest.get("host").and_then(Json::as_str).unwrap_or("");
    let cores = latest.get("effective_cores").and_then(Json::as_i64);
    let prior: Vec<&Json> = entries[..entries.len() - 1]
        .iter()
        .filter(|e| {
            e.get("host").and_then(Json::as_str) == Some(host)
                && e.get("effective_cores").and_then(Json::as_i64) == cores
        })
        .collect();
    let baseline: Vec<&Json> = prior.iter().rev().take(window).rev().copied().collect();
    if baseline.is_empty() {
        println!(
            "perf history: no earlier entries for host '{host}' ({} total) — baseline starts here",
            entries.len()
        );
        return Ok(0);
    }
    let Some(metrics) = latest.get("metrics").and_then(Json::as_obj) else {
        return Err("latest history entry has no metrics object".into());
    };
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (key, value) in metrics {
        let Some(latest_v) = value.as_f64() else {
            continue;
        };
        let mut history: Vec<f64> = baseline
            .iter()
            .filter_map(|e| {
                e.get("metrics")
                    .and_then(|m| m.get(key))
                    .and_then(Json::as_f64)
            })
            .collect();
        if history.is_empty() || higher_is_worse(key).is_none() {
            continue;
        }
        compared += 1;
        let med = median(&mut history);
        if let Some(factor) = regression_factor(key, latest_v, med, noise) {
            regressions += 1;
            println!(
                "REGRESSION {key}: {latest_v:.3} vs trailing median {med:.3} ({factor:.2}x worse, noise band {:.0}%)",
                noise * 100.0
            );
        }
    }
    println!(
        "perf history: compared {compared} directional metrics over {} baseline entries: {}",
        baseline.len(),
        if regressions == 0 {
            "no regressions beyond the noise band".to_string()
        } else {
            format!("{regressions} regression(s)")
        }
    );
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(line: &str) -> Json {
        Json::parse(line).expect("test event")
    }

    #[test]
    fn direction_classification() {
        assert_eq!(higher_is_worse("n6_seq_min_ns"), Some(true));
        assert_eq!(higher_is_worse("elapsed_us"), Some(true));
        assert_eq!(higher_is_worse("n5_speedup_vs_baseline"), Some(false));
        assert_eq!(higher_is_worse("n5_reduction_ratio"), Some(false));
        assert_eq!(higher_is_worse("seq_configs_per_sec"), Some(false));
        assert_eq!(higher_is_worse("configs"), None);
        assert_eq!(higher_is_worse("effective_cores"), None);
    }

    #[test]
    fn regression_factor_respects_noise_band() {
        // Latency up 10% inside a 25% band: fine.
        assert_eq!(regression_factor("x_ns", 110.0, 100.0, 0.25), None);
        // Latency up 2x: regression.
        assert!(regression_factor("x_ns", 200.0, 100.0, 0.25).is_some());
        // Speedup halved: regression.
        assert!(regression_factor("speedup", 1.0, 2.0, 0.25).is_some());
        // Speedup *improved*: never a regression.
        assert_eq!(regression_factor("speedup", 4.0, 2.0, 0.25), None);
        // Directionless keys are never compared.
        assert_eq!(regression_factor("configs", 99.0, 1.0, 0.25), None);
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn worker_rows_attribute_steals_to_victims() {
        let events = vec![
            ev(
                r#"{"seq":0,"t_us":0,"event":"explore.begin","threads":2,"frontier":"work-stealing"}"#,
            ),
            ev(
                r#"{"seq":1,"t_us":5,"event":"ws.steal","worker":1,"victim":0,"outcome":"hit","latency_us":2}"#,
            ),
            ev(
                r#"{"seq":2,"t_us":9,"event":"ws.steal","worker":1,"victim":0,"outcome":"hit","latency_us":1}"#,
            ),
            ev(
                r#"{"seq":3,"t_us":20,"event":"ws.worker","worker":0,"expanded":10,"transitions":20,"steals":0,"steal_fails":1,"local_hits":10,"busy_us":15,"idle_us":5}"#,
            ),
            ev(
                r#"{"seq":4,"t_us":21,"event":"ws.worker","worker":1,"expanded":4,"transitions":8,"steals":2,"steal_fails":0,"local_hits":2,"busy_us":5,"idle_us":15}"#,
            ),
        ];
        let rows = worker_rows(&events);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1]
                .get("victims")
                .and_then(|v| v.get("0"))
                .and_then(Json::as_i64),
            Some(2),
            "worker 1 stole twice from worker 0"
        );
        assert!((field_f64(&rows[0], "utilization").unwrap() - 0.75).abs() < 1e-9);
        assert!((imbalance(&rows) - 10.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn steal_storm_detection_thresholds() {
        let quiet = vec![ev(
            r#"{"event":"ws.worker","worker":0,"expanded":100,"steal_fails":10,"idle_spins":10}"#,
        )];
        let storm = vec![ev(
            r#"{"event":"ws.worker","worker":0,"expanded":10,"steal_fails":600,"idle_spins":600}"#,
        )];
        assert_eq!(
            steal_storm(&quiet).get("detected").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(
            steal_storm(&storm).get("detected").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn parked_workers_are_not_a_steal_storm() {
        // Same 600 failed sweeps, but 580 ended in a timed park: the
        // worker was asleep, not burning a core — no storm.
        let parked = vec![ev(
            r#"{"event":"ws.worker","worker":0,"expanded":10,"steal_fails":600,"idle_spins":20,"park_count":580,"parked_us":58000}"#,
        )];
        let report = steal_storm(&parked);
        assert_eq!(report.get("detected").and_then(Json::as_bool), Some(false));
        assert_eq!(report.get("parked").and_then(Json::as_i64), Some(580));
        // But a genuinely spinning majority still trips detection.
        let spinning = vec![ev(
            r#"{"event":"ws.worker","worker":0,"expanded":10,"steal_fails":600,"idle_spins":550,"park_count":50,"parked_us":5000}"#,
        )];
        assert_eq!(
            steal_storm(&spinning)
                .get("detected")
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn worker_rows_carry_lock_free_engine_counters() {
        let events = vec![ev(
            r#"{"event":"ws.worker","worker":0,"expanded":10,"transitions":20,"steals":1,"steal_fails":3,"local_hits":9,"idle_spins":2,"park_count":4,"parked_us":400,"deque_grows":2,"busy_us":10,"idle_us":2}"#,
        )];
        let rows = worker_rows(&events);
        assert_eq!(field_i64(&rows[0], "park_count"), Some(4));
        assert_eq!(field_i64(&rows[0], "parked_us"), Some(400));
        assert_eq!(field_i64(&rows[0], "deque_grows"), Some(2));
        // Old traces without the fields default to zero, not absence.
        let old = vec![ev(
            r#"{"event":"ws.worker","worker":0,"expanded":10,"busy_us":10,"idle_us":2}"#,
        )];
        let rows = worker_rows(&old);
        assert_eq!(field_i64(&rows[0], "park_count"), Some(0));
        assert_eq!(field_i64(&rows[0], "deque_grows"), Some(0));
    }

    #[test]
    fn underparallelized_levels_are_flagged() {
        let levels = vec![
            ev(
                r#"{"event":"level","level":0,"width":1,"parallel":false,"expand_us":5,"merge_us":0,"elapsed_us":5}"#,
            ),
            ev(
                r#"{"event":"level","level":1,"width":64,"parallel":false,"expand_us":90,"merge_us":0,"elapsed_us":90}"#,
            ),
            ev(
                r#"{"event":"level","level":2,"width":64,"parallel":true,"expand_us":40,"merge_us":10,"elapsed_us":50}"#,
            ),
        ];
        let analysis = level_analysis(&levels, 4);
        let under = analysis
            .get("underparallelized")
            .and_then(Json::as_arr)
            .expect("list");
        assert_eq!(under.len(), 1);
        assert_eq!(field_i64(&under[0], "level"), Some(1));
        // Single-threaded runs are sequential by request, not a pathology.
        let single = level_analysis(&levels, 1);
        assert!(single
            .get("underparallelized")
            .and_then(Json::as_arr)
            .expect("list")
            .is_empty());
    }

    #[test]
    fn level_critical_path_ranks_by_elapsed() {
        let levels = vec![
            ev(r#"{"event":"level","level":0,"elapsed_us":10}"#),
            ev(r#"{"event":"level","level":1,"elapsed_us":70}"#),
            ev(r#"{"event":"level","level":2,"elapsed_us":20}"#),
        ];
        let cp = level_critical_path(&levels);
        let top = cp.get("top").and_then(Json::as_arr).expect("top");
        assert_eq!(field_i64(&top[0], "level"), Some(1));
        assert!((field_f64(&top[0], "share").unwrap() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn gantt_shades_by_busy_fraction() {
        assert_eq!(shade(1.0), '█');
        assert_eq!(shade(0.7), '▓');
        assert_eq!(shade(0.5), '▒');
        assert_eq!(shade(0.1), '░');
        assert_eq!(shade(0.0), '·');
        let events = vec![
            ev(r#"{"event":"explore.begin","t_us":0,"threads":1,"frontier":"work-stealing"}"#),
            ev(r#"{"event":"ws.expand","t_us":10,"worker":0,"expanded":1,"busy_us":8}"#),
            ev(r#"{"event":"ws.done","t_us":100,"worker":0,"expanded":40,"busy_us":95}"#),
        ];
        let workers = vec![ev(r#"{"worker":0,"expanded":40,"utilization":0.95}"#)];
        let rows = render_gantt(&events, &workers);
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].contains('█'),
            "a busy worker renders busy: {rows:?}"
        );
    }

    #[test]
    fn sampling_events_summarize() {
        let events = vec![
            ev(r#"{"event":"sample.begin","runs":200,"k":1}"#),
            ev(r#"{"event":"sample.batch","batch":1,"seeds_tried":100}"#),
            ev(r#"{"event":"sample.end","runs":200,"violations":0}"#),
        ];
        let s = sampling_analysis(&events).expect("sampling section");
        assert_eq!(s.get("sweeps").and_then(Json::as_i64), Some(1));
        assert_eq!(s.get("runs").and_then(Json::as_i64), Some(200));
        assert_eq!(s.get("batches").and_then(Json::as_i64), Some(1));
        assert_eq!(s.get("violations").and_then(Json::as_i64), Some(0));
        assert!(sampling_analysis(&[]).is_none());
    }
}
