//! Profiling harness: loops the T2 n=4 exploration so a sampling profiler
//! has something to chew on. Not an experiment binary.

use lbsa_bench::mixed_binary_inputs;
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::Explorer;
use lbsa_protocols::dac::DacFromPac;
use std::hint::black_box;

fn main() {
    let p = DacFromPac::new(mixed_binary_inputs(4), Pid(0), ObjId(0)).unwrap();
    let objects = vec![AnyObject::pac(4).unwrap()];
    let explorer = Explorer::new(&p, &objects);
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);
    for _ in 0..iters {
        let g = explorer.exploration().threads(1).run().unwrap();
        black_box(g.configs.len());
    }
}
