//! Profiling harness: loops the T2 exploration so a sampling profiler has
//! something to chew on. Not an experiment binary.
//!
//! Usage: `profile_t2 [iters] [--n N] [--symmetric] [--ws] [--kset]
//! [--trace FILE]`. The default is 2000 iterations of the raw n = 4
//! exploration; `--symmetric` profiles the symmetry-reduced (orbit)
//! exploration, `--ws` switches the frontier to work-stealing (auto
//! thread count), and `--kset` profiles the k-set-agreement race
//! (`KSetViaStrongSa` over a strong 2-SA object) instead of Algorithm 2.
//! `--trace FILE` attaches a JSONL tracer to the *last* iteration only
//! (the earlier iterations warm up untraced), producing an
//! `obs_analyze`-ready trace without perturbing the profiled loop.
//! `--threads N` forces the worker count (default: auto for `--ws`,
//! 1 otherwise).
//!
//! Live observability (also last-iteration-only): `--metrics-out
//! FILE.prom` attaches a metrics registry and renders it in the
//! Prometheus text format on exit; `--progress-ms N` streams `progress`
//! events (configs/sec, frontier depth, ETA, memory) into the `--trace`
//! file every N milliseconds — `obs_top --follow FILE` renders them live.

use lbsa_bench::{distinct_inputs, mixed_binary_inputs};
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::{Exploration, Explorer, Frontier, JsonlSink, Registry, Tracer};
use lbsa_protocols::dac::DacFromPac;
use lbsa_protocols::set_agreement_protocols::KSetViaStrongSa;
use lbsa_runtime::process::{Protocol, Symmetry};
use std::hint::black_box;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let symmetric = args.iter().any(|a| a == "--symmetric");
    let ws = args.iter().any(|a| a == "--ws");
    let kset = args.iter().any(|a| a == "--kset");
    let n: usize = args
        .iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let iters: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let trace: Option<String> = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let threads: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());
    let metrics_out: Option<String> = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let progress_ms: Option<u64> = args
        .iter()
        .position(|a| a == "--progress-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());

    let obs = Obs {
        trace: trace.as_deref(),
        metrics_out: metrics_out.as_deref(),
        progress_ms,
    };
    let (workload, configs, last_summary) = if kset {
        let p = KSetViaStrongSa::new(distinct_inputs(n), ObjId(0));
        let objects = vec![AnyObject::strong_sa()];
        let explorer = Explorer::new(&p, &objects);
        run(&explorer, iters, symmetric, ws, threads, &obs)
    } else {
        let p = DacFromPac::new(mixed_binary_inputs(n), Pid(0), ObjId(0)).unwrap();
        let objects = vec![AnyObject::pac(n).unwrap()];
        let explorer = Explorer::new(&p, &objects);
        run(&explorer, iters, symmetric, ws, threads, &obs)
    };
    let family = if kset { "kset_race" } else { "t2_dac" };
    eprintln!("{family} n={n} {workload}: {configs} configs");
    eprintln!("last iteration: {last_summary}");
}

/// The last-iteration observability attachments, parsed once in `main`.
struct Obs<'a> {
    trace: Option<&'a str>,
    metrics_out: Option<&'a str>,
    progress_ms: Option<u64>,
}

fn run<P>(
    explorer: &Explorer<'_, P>,
    iters: usize,
    symmetric: bool,
    ws: bool,
    threads: Option<usize>,
    obs: &Obs<'_>,
) -> (String, usize, String)
where
    P: Protocol + Symmetry,
    P::LocalState: Ord,
{
    let build = || -> Exploration<'_, '_, P> {
        let mut e = explorer.exploration().threads(threads.unwrap_or(1));
        if symmetric {
            e = e.symmetric();
        }
        if ws {
            e = e
                .frontier(Frontier::WorkStealing)
                .threads(threads.unwrap_or(0));
        }
        e
    };
    let json = std::env::args().any(|a| a == "--json");
    let registry = Registry::new();
    let mut configs = 0;
    let mut last_summary = String::new();
    for i in 0..iters {
        let mut e = build();
        if i + 1 == iters {
            if let Some(path) = obs.trace {
                let sink = JsonlSink::create(path).expect("create trace file");
                e = e.trace(Tracer::new(sink));
            }
            if obs.metrics_out.is_some() {
                e = e.registry(registry.clone());
            }
            if let Some(ms) = obs.progress_ms {
                e = e.progress_every(std::time::Duration::from_millis(ms));
            }
        }
        let g = e.run().unwrap();
        configs = black_box(g.configs.len());
        last_summary = if json {
            g.stats.to_json().pretty()
        } else {
            g.stats.summary()
        };
    }
    if let Some(path) = obs.metrics_out {
        std::fs::write(path, registry.render_prometheus()).expect("write metrics file");
        eprintln!("metrics: {path}");
    }
    let mode = match (symmetric, ws) {
        (true, true) => "reduced+ws",
        (true, false) => "reduced",
        (false, true) => "ws",
        (false, false) => "raw",
    };
    (mode.to_string(), configs, last_summary)
}
