//! Profiling harness: loops the T2 exploration so a sampling profiler has
//! something to chew on. Not an experiment binary.
//!
//! Usage: `profile_t2 [iters] [--n N] [--symmetric]`. The default is 2000
//! iterations of the raw n = 4 exploration; `--symmetric` profiles the
//! symmetry-reduced (orbit) exploration instead.

use lbsa_bench::mixed_binary_inputs;
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::Explorer;
use lbsa_protocols::dac::DacFromPac;
use std::hint::black_box;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let symmetric = args.iter().any(|a| a == "--symmetric");
    let n: usize = args
        .iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let iters: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(2000);

    let p = DacFromPac::new(mixed_binary_inputs(n), Pid(0), ObjId(0)).unwrap();
    let objects = vec![AnyObject::pac(n).unwrap()];
    let explorer = Explorer::new(&p, &objects);
    let mut configs = 0;
    let mut last_summary = String::new();
    for _ in 0..iters {
        let g = if symmetric {
            explorer.exploration().threads(1).symmetric().run().unwrap()
        } else {
            explorer.exploration().threads(1).run().unwrap()
        };
        configs = black_box(g.configs.len());
        last_summary = g.stats.summary();
    }
    eprintln!(
        "t2_dac n={n} {}: {configs} configs",
        if symmetric { "reduced" } else { "raw" }
    );
    eprintln!("last iteration: {last_summary}");
}
