//! Profiling harness: loops the T2 exploration so a sampling profiler has
//! something to chew on. Not an experiment binary.
//!
//! Usage: `profile_t2 [iters] [--n N] [--symmetric] [--ws] [--kset]
//! [--trace FILE]`. The default is 2000 iterations of the raw n = 4
//! exploration; `--symmetric` profiles the symmetry-reduced (orbit)
//! exploration, `--ws` switches the frontier to work-stealing (auto
//! thread count), and `--kset` profiles the k-set-agreement race
//! (`KSetViaStrongSa` over a strong 2-SA object) instead of Algorithm 2.
//! `--trace FILE` attaches a JSONL tracer to the *last* iteration only
//! (the earlier iterations warm up untraced), producing an
//! `obs_analyze`-ready trace without perturbing the profiled loop.
//! `--threads N` forces the worker count (default: auto for `--ws`,
//! 1 otherwise).

use lbsa_bench::{distinct_inputs, mixed_binary_inputs};
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::{Exploration, Explorer, Frontier, JsonlSink, Tracer};
use lbsa_protocols::dac::DacFromPac;
use lbsa_protocols::set_agreement_protocols::KSetViaStrongSa;
use lbsa_runtime::process::{Protocol, Symmetry};
use std::hint::black_box;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let symmetric = args.iter().any(|a| a == "--symmetric");
    let ws = args.iter().any(|a| a == "--ws");
    let kset = args.iter().any(|a| a == "--kset");
    let n: usize = args
        .iter()
        .position(|a| a == "--n")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let iters: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let trace: Option<String> = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let threads: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());

    let (workload, configs, last_summary) = if kset {
        let p = KSetViaStrongSa::new(distinct_inputs(n), ObjId(0));
        let objects = vec![AnyObject::strong_sa()];
        let explorer = Explorer::new(&p, &objects);
        run(&explorer, iters, symmetric, ws, threads, trace.as_deref())
    } else {
        let p = DacFromPac::new(mixed_binary_inputs(n), Pid(0), ObjId(0)).unwrap();
        let objects = vec![AnyObject::pac(n).unwrap()];
        let explorer = Explorer::new(&p, &objects);
        run(&explorer, iters, symmetric, ws, threads, trace.as_deref())
    };
    let family = if kset { "kset_race" } else { "t2_dac" };
    eprintln!("{family} n={n} {workload}: {configs} configs");
    eprintln!("last iteration: {last_summary}");
}

fn run<P>(
    explorer: &Explorer<'_, P>,
    iters: usize,
    symmetric: bool,
    ws: bool,
    threads: Option<usize>,
    trace: Option<&str>,
) -> (String, usize, String)
where
    P: Protocol + Symmetry,
    P::LocalState: Ord,
{
    let build = || -> Exploration<'_, '_, P> {
        let mut e = explorer.exploration().threads(threads.unwrap_or(1));
        if symmetric {
            e = e.symmetric();
        }
        if ws {
            e = e
                .frontier(Frontier::WorkStealing)
                .threads(threads.unwrap_or(0));
        }
        e
    };
    let json = std::env::args().any(|a| a == "--json");
    let mut configs = 0;
    let mut last_summary = String::new();
    for i in 0..iters {
        let mut e = build();
        if i + 1 == iters {
            if let Some(path) = trace {
                let sink = JsonlSink::create(path).expect("create trace file");
                e = e.trace(Tracer::new(sink));
            }
        }
        let g = e.run().unwrap();
        configs = black_box(g.configs.len());
        last_summary = if json {
            g.stats.to_json().pretty()
        } else {
            g.stats.summary()
        };
    }
    let mode = match (symmetric, ws) {
        (true, true) => "reduced+ws",
        (true, false) => "reduced",
        (false, true) => "ws",
        (false, false) => "raw",
    };
    (mode.to_string(), configs, last_summary)
}
