//! **Experiment T1** — Algorithm 1, Lemmas 3.2–3.4, Theorem 3.5.
//!
//! Exhaustively enumerates every operation sequence of an n-PAC object (for
//! small `n`, proposal values, and sequence lengths) and machine-checks:
//!
//! * Lemma 3.2 — `upset` ⇔ the history is illegal, after every prefix;
//! * Lemmas 3.3/3.4 — the `V[i]` / `L` state invariants when not upset;
//! * Theorem 3.5 — Agreement, Validity, Nontriviality of the full history.
//!
//! Prints one row per configuration swept. Run with
//! `cargo run --release -p lbsa-bench --bin exp_t1_pac_properties`.

use lbsa_bench::harness::run_experiment;
use lbsa_core::history::{
    check_pac_properties, for_each_op_sequence, is_legal_pac_history, pac_op_alphabet, run_pac,
};
use lbsa_core::ids::Label;
use lbsa_core::pac::PacSpec;
use lbsa_core::spec::ObjectSpec;
use lbsa_core::value::{int, Value};
use lbsa_hierarchy::report::Table;

struct SweepOutcome {
    sequences: usize,
    upset_final: usize,
    lemma_3_2_ok: bool,
    lemmas_3_3_3_4_ok: bool,
    theorem_3_5_ok: bool,
}

fn sweep(n: usize, values: &[Value], max_len: usize) -> SweepOutcome {
    let spec = PacSpec::new(n).expect("n >= 1");
    let alphabet = pac_op_alphabet(n, values);
    let mut out = SweepOutcome {
        sequences: 0,
        upset_final: 0,
        lemma_3_2_ok: true,
        lemmas_3_3_3_4_ok: true,
        theorem_3_5_ok: true,
    };
    for_each_op_sequence(&alphabet, max_len, |ops| {
        out.sequences += 1;
        // Lemma 3.2 at every prefix.
        let mut state = spec.initial_state();
        for (t, op) in ops.iter().enumerate() {
            spec.apply_deterministic(&mut state, op)
                .expect("well-formed ops");
            if spec.is_upset(&state) == is_legal_pac_history(&ops[..=t]) {
                out.lemma_3_2_ok = false;
            }
        }
        if spec.is_upset(&state) {
            out.upset_final += 1;
        } else {
            // Lemmas 3.3 / 3.4 on the final state.
            for i in 0..n {
                let last = ops
                    .iter()
                    .rev()
                    .find(|o| o.label().map(Label::to_index) == Some(i));
                let expected = match last {
                    Some(o) if o.is_pac_propose() => o.proposed_value().expect("propose"),
                    _ => Value::Nil,
                };
                if state.v[i] != expected {
                    out.lemmas_3_3_3_4_ok = false;
                }
            }
            let expected_l = match ops.last() {
                Some(o) if o.is_pac_propose() => Some(o.label().expect("labelled").to_index()),
                _ => None,
            };
            if state.l != expected_l {
                out.lemmas_3_3_3_4_ok = false;
            }
        }
        // Theorem 3.5 on the produced history.
        let history = run_pac(&spec, ops).expect("well-formed ops");
        if check_pac_properties(&history).is_err() {
            out.theorem_3_5_ok = false;
        }
    });
    out
}

fn main() {
    run_experiment(
        "exp_t1_pac_properties",
        "T1 — n-PAC sequential properties (exhaustive)",
        |exp| {
            body(exp);
        },
    );
}

fn body(exp: &mut lbsa_bench::harness::Experiment) {
    let mut table = Table::new(
        "T1 — n-PAC sequential properties (exhaustive)",
        vec![
            "n",
            "values",
            "max len",
            "sequences",
            "upset (final)",
            "L3.2",
            "L3.3/3.4",
            "T3.5",
        ],
    );
    let ok = |b: bool| {
        if b {
            "pass".to_string()
        } else {
            "FAIL".to_string()
        }
    };
    for (n, vals, max_len) in [
        (1usize, vec![int(1), int(2)], 6usize),
        (2, vec![int(1), int(2)], 5),
        (2, vec![int(1), int(2), int(3)], 4),
        (3, vec![int(1), int(2)], 4),
    ] {
        let o = sweep(n, &vals, max_len);
        exp.metric(
            &format!("pac.n{n}.v{}.len{max_len}.sequences", vals.len()),
            o.sequences,
        );
        table.row(vec![
            n.to_string(),
            vals.len().to_string(),
            max_len.to_string(),
            o.sequences.to_string(),
            o.upset_final.to_string(),
            ok(o.lemma_3_2_ok),
            ok(o.lemmas_3_3_3_4_ok),
            ok(o.theorem_3_5_ok),
        ]);
    }
    exp.table(table);
}
