//! **Experiment T6** — Section 7, Theorem 7.1 (Qadri's question).
//!
//! Qadri asked: can (m+1)-consensus objects and registers implement every
//! deterministic object at level `m` of the consensus hierarchy? The paper
//! answers **no**, more generally: for `m >= 2` and `n >= m + 1`, the
//! deterministic (n+1, m)-PAC object is at level `m` yet cannot be
//! implemented from n-consensus objects and registers.
//!
//! Executable instance (`m = 2`, `n = 3`): the (4,2)-PAC.
//!
//! 1. Certify that the (4,2)-PAC is at level 2 (Theorem 5.3).
//! 2. Certify that 3-consensus is at level 3 — a *strictly higher* level.
//! 3. Refute the candidate implementation of the 4-PAC face from one
//!    3-consensus object + registers, by running Algorithm 2 for 4-DAC over
//!    it (Theorem 4.1 makes a violation a refutation of the implementation).
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_t6_qadri`.

use lbsa_bench::harness::run_experiment;
use lbsa_bench::mixed_binary_inputs;
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::checker::{check_dac, DacInstance};
use lbsa_explorer::{Explorer, Limits};
use lbsa_hierarchy::certify::{certified_consensus_number, Face};
use lbsa_hierarchy::report::Table;
use lbsa_protocols::candidates::{CandidatePacProcedure, ValAgreement};
use lbsa_protocols::dac::DacFromPac;
use lbsa_runtime::derived::DerivedProtocol;

fn main() {
    run_experiment(
        "exp_t6_qadri",
        "T6 — Theorem 7.1 (m = 2, n = 3): Qadri's question",
        |exp| {
            let limits = Limits::new(5_000_000);
            exp.param("max_configs", limits.max_configs);
            body(exp, limits);
        },
    );
}

fn body(exp: &mut lbsa_bench::harness::Experiment, limits: Limits) {
    let mut table = Table::new(
        "T6 — Theorem 7.1 (m = 2, n = 3): level-2 object vs level-3 consensus",
        vec!["step", "result"],
    );

    // Step 1: (4,2)-PAC is at level 2.
    let target = AnyObject::combined_pac(4, 2).expect("valid");
    let cert = certified_consensus_number(&target, Face::ProposeC, 4, limits)
        .expect("certification must succeed");
    exp.metric("cert.pac_4_2.level", cert.level);
    exp.metric("cert.pac_4_2.upper_configs", cert.upper.configs);
    table.row(vec![
        "(4,2)-PAC consensus number".into(),
        format!(
            "level {} (upper bound exhaustive over {} configs)",
            cert.level, cert.upper.configs
        ),
    ]);

    // Step 2: 3-consensus is at level 3.
    let base = AnyObject::consensus(3).expect("valid");
    let cert = certified_consensus_number(&base, Face::Propose, 4, limits)
        .expect("certification must succeed");
    table.row(vec![
        "3-consensus consensus number".into(),
        format!("level {}", cert.level),
    ]);

    // Step 3: refute the candidate implementation of the 4-PAC face from
    // one 3-consensus + registers, via 4-DAC over Algorithm 2.
    let labels = 4usize;
    let inputs = mixed_binary_inputs(labels);
    let inner = DacFromPac::new(inputs.clone(), Pid(0), ObjId(0)).expect("4 >= 2");
    let procedure = CandidatePacProcedure::new(labels, ValAgreement::ConsensusObject);
    let v_registers: Vec<ObjId> = (2..2 + labels).map(ObjId).collect();
    let frontends = vec![CandidatePacProcedure::frontend(
        ObjId(0),
        ObjId(1),
        v_registers,
    )];
    let derived = DerivedProtocol::new(&inner, &procedure, frontends);
    let mut objects = vec![AnyObject::consensus(3).expect("valid")];
    objects.extend((0..=labels).map(|_| AnyObject::register()));
    let explorer = Explorer::new(&derived, &objects).with_trace(exp.tracer());
    let instance = DacInstance {
        distinguished: Pid(0),
        inputs,
    };
    let verdict = match check_dac(&explorer, &instance, limits, 80) {
        Err(v) => format!("refuted: {v}"),
        Ok(_) => "NOT REFUTED (machinery bug)".to_string(),
    };
    table.row(vec![
        "4-PAC face from 3-consensus + registers".into(),
        verdict,
    ]);

    exp.table(table);
    exp.note("Reading: a deterministic object at level 2 resists implementation even");
    exp.note("from consensus objects one level HIGHER — Qadri's question answered 'no'.");
}
