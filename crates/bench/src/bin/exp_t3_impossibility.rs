//! **Experiment T3** — Theorems 4.2/4.3: refuting the candidate catalogue.
//!
//! The paper proves no algorithm solves (n+1)-DAC (equivalently implements
//! (n+1)-PAC) from n-consensus objects, registers, and 2-SA objects. This
//! experiment takes each natural candidate from
//! `lbsa_protocols::candidates` and produces a concrete machine-checked
//! counterexample — plus two *soundness controls*: the same machinery must
//! not refute Algorithm 2 itself, nor a candidate operating within its
//! budget.
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_t3_impossibility`.

use lbsa_bench::harness::run_experiment;
use lbsa_bench::mixed_binary_inputs;
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::adversary::{find_nontermination, verify_witness};
use lbsa_explorer::checker::{check_consensus, check_dac, DacInstance, Violation};
use lbsa_explorer::{Explorer, Limits};
use lbsa_hierarchy::report::Table;
use lbsa_protocols::candidates::{
    CandidatePacProcedure, DacWaitForWinner, SaThenConsensus, ValAgreement, WaitForWinner,
};
use lbsa_protocols::dac::DacFromPac;
use lbsa_runtime::derived::DerivedProtocol;

fn violation_kind(v: &Violation) -> String {
    match v {
        Violation::Agreement { .. } => "agreement violation".to_string(),
        Violation::Validity { .. } => "validity violation".to_string(),
        Violation::NonTermination(w) => {
            format!("non-termination (cycle len {})", w.cycle.len())
        }
        Violation::SoloNonTermination { pid, .. } => {
            format!("solo non-termination ({pid})")
        }
        other => format!("{other}"),
    }
}

fn main() {
    run_experiment(
        "exp_t3_impossibility",
        "T3 — Theorem 4.2/4.3 refutations (n = 2, targets use 3 processes)",
        |exp| {
            let limits = Limits::new(2_000_000);
            exp.param("max_configs", limits.max_configs);
            body(exp, limits);
        },
    );
}

fn body(exp: &mut lbsa_bench::harness::Experiment, limits: Limits) {
    let mut table = Table::new(
        "T3 — Theorem 4.2/4.3 refutations (n = 2, targets use 3 processes)",
        vec!["candidate", "base objects", "verdict"],
    );

    // Control 1: Algorithm 2 itself passes (3-DAC from a 3-PAC).
    {
        let inputs = mixed_binary_inputs(3);
        let protocol = DacFromPac::new(inputs, Pid(0), ObjId(0)).expect("3 >= 2");
        let objects = vec![AnyObject::pac(3).expect("valid")];
        let explorer = Explorer::new(&protocol, &objects).with_trace(exp.tracer());
        let verdict = match check_dac(&explorer, &protocol.instance(), limits, 18) {
            Ok(s) => format!("correct (control): {} configs checked", s.configs),
            Err(v) => format!("UNEXPECTEDLY REFUTED: {v}"),
        };
        table.row(vec![
            "Algorithm 2 (3-DAC)".into(),
            "one 3-PAC".into(),
            verdict,
        ]);
    }

    // Control 2: wait-for-winner within budget (2 processes, 2-consensus).
    {
        let inputs = mixed_binary_inputs(2);
        let p = WaitForWinner::new(inputs.clone());
        let objects = vec![
            AnyObject::consensus(2).expect("valid"),
            AnyObject::register(),
        ];
        let ex = Explorer::new(&p, &objects).with_trace(exp.tracer());
        let verdict = match check_consensus(&ex, &inputs, limits) {
            Ok(s) => format!("correct (control): {} configs checked", s.configs),
            Err(v) => format!("UNEXPECTEDLY REFUTED: {v}"),
        };
        table.row(vec![
            "wait-for-winner, 2 procs".into(),
            "2-consensus + register".into(),
            verdict,
        ]);
    }

    // Candidate 1: wait-for-winner with 3 processes.
    {
        let inputs = mixed_binary_inputs(3);
        let p = WaitForWinner::new(inputs.clone());
        let objects = vec![
            AnyObject::consensus(2).expect("valid"),
            AnyObject::register(),
        ];
        let ex = Explorer::new(&p, &objects).with_trace(exp.tracer());
        let verdict = match check_consensus(&ex, &inputs, limits) {
            Err(v) => {
                // Confirm the certificate replays.
                let g = ex.exploration().limits(limits).run().expect("explorable");
                let replayed = find_nontermination(&g)
                    .map(|w| verify_witness(&g, &w))
                    .unwrap_or(false);
                format!("{} — certificate replays: {replayed}", violation_kind(&v))
            }
            Ok(_) => "NOT REFUTED (machinery bug)".to_string(),
        };
        table.row(vec![
            "wait-for-winner, 3 procs".into(),
            "2-consensus + register".into(),
            verdict,
        ]);
    }

    // Candidate 2: 2-SA narrowing then consensus tie-break.
    {
        let inputs = mixed_binary_inputs(3);
        let p = SaThenConsensus::new(inputs.clone());
        let objects = vec![
            AnyObject::strong_sa(),
            AnyObject::consensus(2).expect("valid"),
        ];
        let ex = Explorer::new(&p, &objects).with_trace(exp.tracer());
        let verdict = match check_consensus(&ex, &inputs, limits) {
            Err(v) => violation_kind(&v),
            Ok(_) => "NOT REFUTED (machinery bug)".to_string(),
        };
        table.row(vec![
            "2-SA narrow + tie-break".into(),
            "2-SA + 2-consensus".into(),
            verdict,
        ]);
    }

    // Candidate 3: the DAC variant of wait-for-winner.
    {
        let inputs = mixed_binary_inputs(3);
        let p = DacWaitForWinner::new(inputs.clone(), Pid(0));
        let objects = vec![
            AnyObject::consensus(2).expect("valid"),
            AnyObject::register(),
        ];
        let ex = Explorer::new(&p, &objects).with_trace(exp.tracer());
        let instance = DacInstance {
            distinguished: Pid(0),
            inputs,
        };
        let verdict = match check_dac(&ex, &instance, limits, 18) {
            Err(v) => violation_kind(&v),
            Ok(_) => "NOT REFUTED (machinery bug)".to_string(),
        };
        table.row(vec![
            "DAC wait-for-winner".into(),
            "2-consensus + register".into(),
            verdict,
        ]);
    }

    // Candidate 4: the register-based 3-PAC implementation with consensus
    // val-agreement, attacked through Algorithm 2 (Theorem 4.3 shape).
    {
        let inputs = mixed_binary_inputs(3);
        let inner = DacFromPac::new(inputs.clone(), Pid(0), ObjId(0)).expect("3 >= 2");
        let procedure = CandidatePacProcedure::new(3, ValAgreement::ConsensusObject);
        let frontends = vec![CandidatePacProcedure::frontend(
            ObjId(0),
            ObjId(1),
            vec![ObjId(2), ObjId(3), ObjId(4)],
        )];
        let derived = DerivedProtocol::new(&inner, &procedure, frontends);
        let mut objects = vec![AnyObject::consensus(2).expect("valid")];
        objects.extend((0..4).map(|_| AnyObject::register()));
        let ex = Explorer::new(&derived, &objects).with_trace(exp.tracer());
        let instance = DacInstance {
            distinguished: Pid(0),
            inputs,
        };
        let verdict = match check_dac(&ex, &instance, limits, 60) {
            Err(v) => violation_kind(&v),
            Ok(_) => "NOT REFUTED (machinery bug)".to_string(),
        };
        table.row(vec![
            "register 3-PAC impl (Alg. 2 on top)".into(),
            "2-consensus + 4 registers".into(),
            verdict,
        ]);
    }

    exp.table(table);
    exp.note("Controls must read 'correct'; every candidate must be refuted.");
}
