//! **Experiment F6 (extension)** — the anatomy of critical configurations.
//!
//! The engine room of the paper's impossibility proofs is a sequence of
//! claims about *critical configurations* (bivalent, every successor
//! univalent): all processes must be poised on the **same object**
//! (Claims 4.2.7 / 5.2.3) and that object **cannot be a register**
//! (Claims 4.2.8 / 5.2.4). This experiment extracts exactly that anatomy
//! from concrete solvable protocols and watches the proof's skeleton appear:
//! every critical configuration converges on the one consensus-bearing
//! object in the system.
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_f6_critical_anatomy`.

use lbsa_bench::harness::run_experiment;
use lbsa_bench::mixed_binary_inputs;
use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
use lbsa_explorer::valency::{critical_anatomy, ValencyAnalysis};
use lbsa_explorer::{Explorer, Tracer};
use lbsa_hierarchy::report::Table;
use lbsa_protocols::classic_consensus::{ClassicConsensus, RacePrimitive};
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_runtime::process::{Protocol, Step};

/// Each process writes to its register, then proposes to the consensus
/// object — a protocol with register noise around the decision step.
#[derive(Debug)]
struct WriteThenPropose {
    inputs: Vec<Value>,
}

impl Protocol for WriteThenPropose {
    type LocalState = bool;
    fn num_processes(&self) -> usize {
        self.inputs.len()
    }
    fn init(&self, _pid: Pid) -> bool {
        false
    }
    fn pending_op(&self, pid: Pid, s: &bool) -> (ObjId, Op) {
        if *s {
            (ObjId(0), Op::Propose(self.inputs[pid.index()]))
        } else {
            (ObjId(1 + pid.index()), Op::Write(self.inputs[pid.index()]))
        }
    }
    fn on_response(&self, _pid: Pid, s: &bool, resp: Value) -> Step<bool> {
        if *s {
            Step::Decide(resp)
        } else {
            Step::Continue(true)
        }
    }
}

fn analyze<P: Protocol>(
    name: &str,
    protocol: &P,
    objects: &[AnyObject],
    tracer: Tracer,
    table: &mut Table,
) {
    let ex = Explorer::new(protocol, objects).with_trace(tracer);
    let g = ex
        .exploration()
        .max_configs(2_000_000)
        .run()
        .expect("explorable");
    let va = ValencyAnalysis::analyze(&g);
    let anatomy = critical_anatomy(&ex, &g, &va).expect("anatomy computable");
    if anatomy.is_empty() {
        table.row(vec![
            name.into(),
            "0".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        return;
    }
    let all_same = anatomy.iter().all(|i| i.same_object.is_some());
    let kinds: std::collections::BTreeSet<&str> =
        anatomy.iter().filter_map(|i| i.object_kind).collect();
    let register_free = !kinds.contains("register");
    table.row(vec![
        name.into(),
        anatomy.len().to_string(),
        if all_same {
            "yes (claim 4.2.7 shape)".into()
        } else {
            "NO".into()
        },
        kinds.into_iter().collect::<Vec<_>>().join(", "),
        if register_free {
            "yes (claim 4.2.8 shape)".into()
        } else {
            "NO".into()
        },
    ]);
}

fn main() {
    run_experiment(
        "exp_f6_critical_anatomy",
        "F6 — critical configurations: all poised on one (non-register) object",
        |exp| {
            body(exp);
        },
    );
}

fn body(exp: &mut lbsa_bench::harness::Experiment) {
    let mut table = Table::new(
        "F6 — critical configurations: all poised on one (non-register) object",
        vec![
            "protocol",
            "critical configs",
            "same object?",
            "object kind(s)",
            "register-free?",
        ],
    );

    let p = ConsensusViaObject::new(mixed_binary_inputs(2), ObjId(0));
    let objects = vec![AnyObject::consensus(2).expect("valid")];
    analyze("2-consensus race", &p, &objects, exp.tracer(), &mut table);

    let p = ConsensusViaObject::new(mixed_binary_inputs(3), ObjId(0));
    let objects = vec![AnyObject::consensus(3).expect("valid")];
    analyze("3-consensus race", &p, &objects, exp.tracer(), &mut table);

    let p = WriteThenPropose {
        inputs: mixed_binary_inputs(2),
    };
    let objects = vec![
        AnyObject::consensus(2).expect("valid"),
        AnyObject::register(),
        AnyObject::register(),
    ];
    analyze(
        "write registers, then propose",
        &p,
        &objects,
        exp.tracer(),
        &mut table,
    );

    let p = WriteThenPropose {
        inputs: mixed_binary_inputs(3),
    };
    let objects = vec![
        AnyObject::consensus(3).expect("valid"),
        AnyObject::register(),
        AnyObject::register(),
        AnyObject::register(),
    ];
    analyze(
        "write registers, then propose (3p)",
        &p,
        &objects,
        exp.tracer(),
        &mut table,
    );

    for (prim, name) in [
        (RacePrimitive::TestAndSet, "test-and-set consensus"),
        (RacePrimitive::FetchAdd, "fetch-and-add consensus"),
        (RacePrimitive::Queue, "queue consensus"),
    ] {
        let p = ClassicConsensus::two_process(prim, mixed_binary_inputs(2)).expect("2 inputs");
        let objects = p.objects();
        analyze(name, &p, &objects, exp.tracer(), &mut table);
    }

    let p = ClassicConsensus::cas(mixed_binary_inputs(3));
    let objects = p.objects();
    analyze("CAS consensus (3p)", &p, &objects, exp.tracer(), &mut table);

    exp.table(table);
    exp.note("Every solvable protocol funnels its critical configurations onto the one");
    exp.note("consensus-bearing object, never a register — the executable shape of the");
    exp.note("case analysis in the proofs of Theorems 4.2 and 5.2.");
}
