//! **Experiment F7 (extension)** — sampled checking above the exhaustive
//! frontier.
//!
//! Exhaustive exploration certifies everything up to ~6 processes; this
//! experiment pushes the same *safety* properties to larger instances with
//! seeded random sampling (violations would come back with a reproducing
//! seed). Termination is reported as quiescent-vs-budget counts: n-DAC's
//! retry loops legitimately starve under adversarial randomness, and the
//! table shows exactly how often.
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_f7_sampled_scale`.

use lbsa_bench::harness::run_experiment;
use lbsa_bench::{distinct_inputs, mixed_binary_inputs};
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::sampling::{sample_k_set_agreement, SampleConfig};
use lbsa_hierarchy::report::Table;
use lbsa_protocols::dac::DacFromPac;
use lbsa_protocols::set_agreement_protocols::{GroupSplitKSet, KSetViaPowerLevel};

fn main() {
    run_experiment(
        "exp_f7_sampled_scale",
        "F7 — sampled safety checks beyond the exhaustive frontier",
        |exp| {
            body(exp);
        },
    );
}

fn body(exp: &mut lbsa_bench::harness::Experiment) {
    let mut table = Table::new(
        "F7 — sampled safety checks beyond the exhaustive frontier",
        vec![
            "workload",
            "processes",
            "k",
            "runs",
            "quiescent",
            "budget-stopped",
            "distinct outcomes",
            "verdict",
        ],
    );
    let config = SampleConfig {
        runs: 500,
        seed0: 0,
        max_steps: 50_000,
        ..SampleConfig::default()
    };

    // Algorithm 2 at n = 6, 8, 10: agreement/validity hold on every sampled
    // run; some runs hit the budget (retry-loop starvation — expected).
    for n in [6usize, 8, 10] {
        let inputs = mixed_binary_inputs(n);
        let protocol = DacFromPac::new(inputs.clone(), Pid(0), ObjId(0)).expect("n >= 2");
        let objects = vec![AnyObject::pac(n).expect("valid")];
        let tracer = exp.tracer();
        let row = match sample_k_set_agreement(&protocol, &objects, 1, &inputs, config, &tracer) {
            Ok(r) => {
                exp.metric(&format!("sampled.dac.n{n}.quiescent"), r.quiescent);
                exp.metric(&format!("sampled.dac.n{n}.budget_hit"), r.budget_hit);
                vec![
                    "Algorithm 2 (n-DAC)".to_string(),
                    n.to_string(),
                    "1".into(),
                    r.runs.to_string(),
                    r.quiescent.to_string(),
                    r.budget_hit.to_string(),
                    r.distinct_outcomes.to_string(),
                    "safety holds".into(),
                ]
            }
            Err(v) => vec![
                "Algorithm 2 (n-DAC)".to_string(),
                n.to_string(),
                "1".into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                format!("VIOLATED: {v}"),
            ],
        };
        table.row(row);
    }

    // Group-split k-set agreement at k·n = 12 (k = 3 groups of 4).
    {
        let inputs = distinct_inputs(12);
        let protocol = GroupSplitKSet::via_combined(inputs.clone(), 4).expect("group size 4");
        let objects: Vec<AnyObject> = (0..3).map(|_| AnyObject::o_n(4).expect("valid")).collect();
        let tracer = exp.tracer();
        let row = match sample_k_set_agreement(&protocol, &objects, 3, &inputs, config, &tracer) {
            Ok(r) => {
                exp.metric("sampled.group_split.quiescent", r.quiescent);
                exp.metric("sampled.group_split.budget_hit", r.budget_hit);
                vec![
                    "group-split over O_4".to_string(),
                    "12".into(),
                    "3".into(),
                    r.runs.to_string(),
                    r.quiescent.to_string(),
                    r.budget_hit.to_string(),
                    r.distinct_outcomes.to_string(),
                    "safety holds".into(),
                ]
            }
            Err(v) => vec![
                "group-split over O_4".to_string(),
                "12".into(),
                "3".into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                format!("VIOLATED: {v}"),
            ],
        };
        table.row(row);
    }

    // O'_4 level 3 among n_3 = 12 processes.
    {
        let inputs = distinct_inputs(12);
        let protocol = KSetViaPowerLevel::new(inputs.clone(), ObjId(0), 3);
        let objects = vec![AnyObject::o_prime_n(4, 3).expect("valid")];
        let tracer = exp.tracer();
        let row = match sample_k_set_agreement(&protocol, &objects, 3, &inputs, config, &tracer) {
            Ok(r) => {
                exp.metric("sampled.power_level.quiescent", r.quiescent);
                exp.metric("sampled.power_level.budget_hit", r.budget_hit);
                vec![
                    "O'_4 level 3".to_string(),
                    "12".into(),
                    "3".into(),
                    r.runs.to_string(),
                    r.quiescent.to_string(),
                    r.budget_hit.to_string(),
                    r.distinct_outcomes.to_string(),
                    "safety holds".into(),
                ]
            }
            Err(v) => vec![
                "O'_4 level 3".to_string(),
                "12".into(),
                "3".into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                format!("VIOLATED: {v}"),
            ],
        };
        table.row(row);
    }

    exp.table(table);
    exp.note("Sampling checks safety only; a pass is evidence, not proof (seeds make");
    exp.note("any violation reproducible). Exhaustive certification lives in T1-T6.");
}
