//! Perf smoke gate: compares a freshly regenerated `BENCH_explore.json`
//! against the committed one and fails (exit 1) on a perf regression.
//!
//! Usage: `perf_smoke <committed.json> <fresh.json> [--history FILE]`
//!
//! Checks, in order:
//!
//! 1. the fresh engine still beats the seed baseline by ≥ 2× on T2 n = 5
//!    (`n5_speedup_vs_baseline ≥ 2.0`) — the absolute gate lives on the
//!    larger workload because the n = 4 graph (275 configs) is small
//!    enough that per-run setup compresses the ratio toward ~1.9 and
//!    couples it to the host's thermal state, while n = 5 sits near 2.7
//!    with real headroom;
//! 2. the n = 4 engine-vs-baseline speedup stays above a 1.5× hard floor.
//!    No committed-relative check here: the measured value swings 1.8–2.6
//!    with the host's thermal state (the baseline is memory-bound, the
//!    engine is not), so anchoring to whichever end was committed would
//!    flake, while a true regression — say, dedup interning accidentally
//!    disabled — drops the ratio to ≈ 1.0 and trips the floor reliably;
//! 3. the parallel-vs-sequential speedup has not regressed more than 15%
//!    below the committed value (on a single-core host both sides sit at
//!    ≈ 1.0 — the adaptive gate routes everything sequential — so this
//!    check degrades to "don't get slower than committed there either");
//! 4. symmetry reduction still shrinks the symmetric T2 n = 5 state space
//!    by ≥ 5× (`n5_reduction_ratio ≥ 5.0`). The n = 4 ratio is reported
//!    but not gated: its group is S_3, so the ratio is capped at 6 and
//!    sits near 3.4 by orbit counting, not by implementation quality;
//! 5. the work-stealing frontier wins on the big committed workloads.
//!    `n6_speedup_par_vs_seq` and `kset_speedup_par_vs_seq` are gated
//!    against a floor that scales with the host recorded in the *fresh*
//!    report (`effective_cores`): ≥ 1.5 with eight or more cores — real
//!    parallel win, the acceptance bar — ≥ 1.0 with 2–7 cores, and ≥ 0.6
//!    on a single core, where stealing cannot win and the gate bounds
//!    the overhead of the lock-free frontier (raised from 0.4 when the
//!    mutexed deques were replaced by Chase–Lev deques and batched
//!    index probes);
//! 6. symmetry reduction wins *wall clock*, not just state count, on the
//!    committed n = 6 workload: `n6_speedup_reduced_vs_raw ≥ 1.0`, i.e.
//!    reduced-over-raw elapsed < 1.0. This is the gate on incremental
//!    canonicalization — with full orbit minimization the reduced run is
//!    ~2.4× *slower* than raw at n = 6.
//!
//! Additionally, the sampling engine's `schedules_per_sec` (the F8
//! vote-propagation workload, one worker) is checked *advisorily*: a drop
//! below 50% of the committed value prints a warning but never fails the
//! gate, since per-run cost tracks the host's single-thread speed more
//! than the engine's overhead.
//!
//! Absent keys in the *committed* file are tolerated (first run after a
//! schema extension); absent keys in the *fresh* file are failures.
//!
//! With `--history FILE`, every run — pass or fail — additionally appends
//! one JSONL entry to `FILE` carrying a host fingerprint (CPU model +
//! core count), the unix timestamp, `effective_cores`, the gate verdict,
//! and every numeric metric of the fresh report (gate numbers and the
//! histogram quantiles emitted by `explore_scaling`). The trailing file
//! is the input to `obs_analyze --regress`, which compares the newest
//! entry against the trailing same-host median with a noise band.

use lbsa_support::json::Json;
use std::process::ExitCode;

/// History entries from incompatible schema generations are skipped by
/// readers keying on this tag.
const HISTORY_SCHEMA: &str = "lbsa-bench-history/v1";

fn load(path: &str) -> Option<Json> {
    let text = std::fs::read_to_string(path).ok()?;
    Json::parse(&text).ok()
}

fn num(j: &Json, key: &str) -> Option<f64> {
    j.get(key).and_then(Json::as_f64)
}

/// A stable host fingerprint: the CPU model string plus the visible core
/// count. Deliberately std-only — `/proc/cpuinfo` where available, with a
/// portable fallback — so history entries from different machines never
/// get compared against each other by `obs_analyze --regress`.
fn host_fingerprint() -> String {
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown-cpu".into());
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    format!("{model}/{cores}c")
}

/// Appends one history entry for this run. Errors are reported but never
/// fail the gate — history is telemetry, not a correctness check.
fn append_history(path: &str, fresh: &Json, gates_ok: bool) {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut metrics = Json::object();
    if let Some(fields) = fresh.as_obj() {
        for (key, value) in fields {
            if value.as_f64().is_some() {
                metrics = metrics.set(key, value.clone());
            }
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let entry = Json::object()
        .set("schema", HISTORY_SCHEMA)
        .set("ts", ts)
        .set("host", host_fingerprint())
        .set("effective_cores", cores)
        .set("gates_ok", gates_ok)
        .set("metrics", metrics);
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{}", entry.compact()));
    match appended {
        Ok(()) => println!("perf history: appended to {path}"),
        Err(e) => eprintln!("perf history: cannot append to {path}: {e}"),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let history = args.iter().position(|a| a == "--history").and_then(|i| {
        if i + 1 < args.len() {
            let file = args.remove(i + 1);
            args.remove(i);
            Some(file)
        } else {
            eprintln!("perf_smoke: --history needs a file argument");
            None
        }
    });
    let [committed_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: perf_smoke <committed.json> <fresh.json> [--history FILE]");
        return ExitCode::FAILURE;
    };
    let Some(fresh) = load(fresh_path) else {
        eprintln!("perf_smoke: cannot read or parse fresh report {fresh_path}");
        return ExitCode::FAILURE;
    };
    let committed = load(committed_path);
    if committed.is_none() {
        eprintln!("perf_smoke: no committed report at {committed_path}; gating fresh only");
    }

    let mut failures = Vec::new();
    let mut measured = Vec::new();

    match num(&fresh, "n5_speedup_vs_baseline") {
        Some(s) if s >= 2.0 => {
            println!("n5_speedup_vs_baseline: {s:.2} (>= 2.0) ok");
            measured.push(format!("n5_speedup {s:.2}"));
        }
        Some(s) => failures.push(format!("n5_speedup_vs_baseline {s:.2} < 2.0")),
        None => failures.push("fresh report lacks n5_speedup_vs_baseline".into()),
    }

    match num(&fresh, "speedup_vs_baseline") {
        Some(s) if s >= 1.5 => {
            println!("speedup_vs_baseline: {s:.2} (>= 1.5 floor) ok");
            measured.push(format!("n4_speedup {s:.2}"));
        }
        Some(s) => failures.push(format!("speedup_vs_baseline {s:.2} < 1.5 hard floor")),
        None => failures.push("fresh report lacks speedup_vs_baseline".into()),
    }

    match num(&fresh, "speedup_par_vs_seq") {
        Some(par) => {
            let floor = committed
                .as_ref()
                .and_then(|c| num(c, "speedup_par_vs_seq"))
                .map_or(0.0, |c| c * 0.85);
            if par >= floor {
                println!("speedup_par_vs_seq: {par:.2} (floor {floor:.2}) ok");
                measured.push(format!("par_vs_seq {par:.2}"));
            } else {
                failures.push(format!(
                    "speedup_par_vs_seq {par:.2} regressed below {floor:.2} \
                     (85% of committed)"
                ));
            }
        }
        None => failures.push("fresh report lacks speedup_par_vs_seq".into()),
    }

    match num(&fresh, "n5_reduction_ratio") {
        Some(r) if r >= 5.0 => {
            println!("n5_reduction_ratio: {r:.2} (>= 5.0) ok");
            measured.push(format!("n5_reduction {r:.2}"));
        }
        Some(r) => failures.push(format!("n5_reduction_ratio {r:.2} < 5.0")),
        None => failures.push("fresh report lacks n5_reduction_ratio".into()),
    }

    // Work-stealing gates scale with the host the fresh report was
    // generated on: demanding a 1.5× parallel speedup from a single-core
    // CI box would gate on physics, not on the implementation.
    let cores = num(&fresh, "effective_cores").map_or(1.0, |c| c.max(1.0));
    let ws_floor = if cores >= 8.0 {
        1.5
    } else if cores >= 2.0 {
        1.0
    } else {
        // The lock-free frontier keeps single-core overhead well below
        // what the old mutexed deques allowed (0.4): one worker on one
        // core never contends, so the remaining cost is deque bookkeeping
        // plus the batched index round.
        0.6
    };
    for key in ["n6_speedup_par_vs_seq", "kset_speedup_par_vs_seq"] {
        match num(&fresh, key) {
            Some(s) if s >= ws_floor => {
                println!("{key}: {s:.2} (>= {ws_floor:.2} at {cores:.0} cores) ok");
                measured.push(format!("{key} {s:.2}"));
            }
            Some(s) => failures.push(format!(
                "{key} {s:.2} < {ws_floor:.2} floor at {cores:.0} cores"
            )),
            None => failures.push(format!("fresh report lacks {key}")),
        }
    }

    match num(&fresh, "n6_speedup_reduced_vs_raw") {
        Some(s) if s >= 1.0 => {
            println!("n6_speedup_reduced_vs_raw: {s:.2} (>= 1.0, reduction wins wall clock) ok");
            measured.push(format!("n6_reduced_vs_raw {s:.2}"));
        }
        Some(s) => failures.push(format!(
            "n6_speedup_reduced_vs_raw {s:.2} < 1.0: orbit reduction lost to raw exploration"
        )),
        None => failures.push("fresh report lacks n6_speedup_reduced_vs_raw".into()),
    }

    if let Some(r) = num(&fresh, "reduction_ratio") {
        println!("n=4 reduction_ratio: {r:.2} (informational; S_3 caps it at 6)");
    }
    if let Some(r) = num(&fresh, "n6_reduction_ratio") {
        println!("n=6 reduction_ratio: {r:.2} (informational; gated via wall clock)");
    }

    // Sampling-engine throughput: advisory only. Per-run cost is dominated
    // by protocol stepping, which varies with the host far more than the
    // engine's own overhead, so a regression here warns instead of failing
    // — the number still rides into the history for trend analysis.
    match num(&fresh, "schedules_per_sec") {
        Some(s) => {
            let committed_sps = committed.as_ref().and_then(|c| num(c, "schedules_per_sec"));
            match committed_sps {
                Some(c) if s < c * 0.5 => eprintln!(
                    "perf smoke WARNING: schedules_per_sec {s:.0} < 50% of committed {c:.0} \
                     (advisory, not gated)"
                ),
                Some(c) => println!("schedules_per_sec: {s:.0} (committed {c:.0}, advisory) ok"),
                None => println!("schedules_per_sec: {s:.0} (no committed value, advisory)"),
            }
            measured.push(format!("schedules_per_sec {s:.0}"));
        }
        None => eprintln!(
            "perf smoke WARNING: fresh report lacks schedules_per_sec (advisory, not gated)"
        ),
    }

    // Memory-footprint ceilings: advisory only, like the sampling
    // throughput. The structural estimates (`Interner::approx_bytes` and
    // friends) are stable across hosts, but growth here usually tracks an
    // intentional capacity change — warn-and-record beats hard-failing,
    // and the history trail catches slow leaks via `obs_analyze --regress`.
    for key in ["n6_peak_interner_bytes", "bytes_per_state"] {
        match num(&fresh, key) {
            Some(b) => {
                let committed_b = committed.as_ref().and_then(|c| num(c, key));
                match committed_b {
                    Some(c) if c > 0.0 && b > c * 1.5 => eprintln!(
                        "perf smoke WARNING: {key} {b:.0} > 150% of committed {c:.0} \
                         (advisory, not gated)"
                    ),
                    Some(c) => println!("{key}: {b:.0} (committed {c:.0}, advisory) ok"),
                    None => println!("{key}: {b:.0} (no committed value, advisory)"),
                }
                measured.push(format!("{key} {b:.0}"));
            }
            None => {
                eprintln!("perf smoke WARNING: fresh report lacks {key} (advisory, not gated)");
            }
        }
    }

    if let Some(path) = &history {
        append_history(path, &fresh, failures.is_empty());
    }

    if failures.is_empty() {
        println!("perf smoke: ok ({})", measured.join(", "));
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("perf smoke FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
