//! **Experiment T5** — Section 6: the `Oₙ` vs `O'ₙ` separation
//! (Definition 6.1, Lemma 6.4, Theorem 6.5, Corollaries 6.6/6.7).
//!
//! Runs the full pipeline for `n = 2` (and `n = 3` at reduced depth):
//! certified power tables of `Oₙ` and `O'ₙ` and their equality, the
//! Lemma 6.4 implementability of `O'ₙ` (linearizability-checked), and the
//! refutation of each candidate implementation of `Oₙ` from `O'ₙ` +
//! registers.
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_t5_separation`.

use lbsa_bench::harness::run_experiment;
use lbsa_explorer::Limits;
use lbsa_hierarchy::report::Table;
use lbsa_hierarchy::separation::run_separation;

fn main() {
    run_experiment(
        "exp_t5_separation",
        "T5 — the O_n vs O'_n separation (Section 6)",
        |exp| {
            let limits = Limits::new(2_000_000);
            exp.param("max_configs", limits.max_configs);
            body(exp, limits);
        },
    );
}

fn body(exp: &mut lbsa_bench::harness::Experiment, limits: Limits) {
    let mut power = Table::new(
        "T5a — certified set agreement power tables (lower bounds, k <= K)",
        vec!["n", "k", "n_k(O_n)", "n_k(O'_n)", "match"],
    );
    let mut pipeline = Table::new(
        "T5b — separation pipeline (Cor. 6.6: same power, not equivalent)",
        vec![
            "n",
            "powers match",
            "Lemma 6.4 histories",
            "candidate",
            "refutation",
        ],
    );

    for (n, max_k, seeds) in [(2usize, 2usize, 10u64), (3, 2, 6)] {
        match run_separation(n, max_k, limits, seeds) {
            Ok(report) => {
                for (k, a) in report.o_n_power.iter() {
                    let b = report.o_prime_power.n_k(k).expect("same depth");
                    power.row(vec![
                        n.to_string(),
                        k.to_string(),
                        a.to_string(),
                        b.to_string(),
                        if a == b { "yes".into() } else { "NO".into() },
                    ]);
                }
                for r in &report.refutations {
                    pipeline.row(vec![
                        n.to_string(),
                        report.powers_match().to_string(),
                        report.lemma_6_4_histories_checked.to_string(),
                        r.candidate.clone(),
                        format!("{}", r.violation),
                    ]);
                }
                exp.metric(
                    &format!("separation.n{n}.lemma_6_4_histories"),
                    report.lemma_6_4_histories_checked,
                );
                exp.metric(
                    &format!("separation.n{n}.refutations"),
                    report.refutations.len(),
                );
                assert!(
                    report.separation_established(),
                    "pipeline incomplete for n = {n}"
                );
            }
            Err(e) => {
                pipeline.row(vec![
                    n.to_string(),
                    format!("PIPELINE ERROR: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
            }
        }
    }

    exp.table(power);
    exp.table(pipeline);
    exp.note("Conclusion (Cor. 6.6): O_n and O'_n certify the same set agreement power,");
    exp.note("O'_n is implementable from n-consensus + 2-SA (Lemma 6.4), yet every");
    exp.note("candidate implementation of O_n from O'_n + registers is refuted (Thm 6.5).");
}
