//! **Experiment T7 (extension)** — the paper's objects among the classics.
//!
//! Certifies the familiar consensus-hierarchy inhabitants with the same
//! machinery used for the paper's objects: test-and-set / fetch-and-add /
//! queue at level 2 (direct 2-process protocols verified exhaustively;
//! the natural announce-style n-process generalizations refuted with
//! non-termination certificates), compare-and-swap above every level
//! checked, and — for contrast — `Oₙ` / `O'ₙ` at level `n`.
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_t7_classic_hierarchy`.

use lbsa_bench::harness::run_experiment;
use lbsa_bench::mixed_binary_inputs;
use lbsa_core::{AnyObject, Value};
use lbsa_explorer::checker::{check_consensus, Violation};
use lbsa_explorer::{Explorer, Limits};
use lbsa_hierarchy::certify::{certified_consensus_number, Face};
use lbsa_hierarchy::report::Table;
use lbsa_protocols::classic_consensus::{AnnounceConsensus, ClassicConsensus, RacePrimitive};

fn main() {
    run_experiment(
        "exp_t7_classic_hierarchy",
        "T7 — classic primitives vs the paper's objects (one machinery)",
        |exp| {
            let limits = Limits::new(2_000_000);
            exp.param("max_configs", limits.max_configs);
            body(exp, limits);
        },
    );
}

fn body(exp: &mut lbsa_bench::harness::Experiment, limits: Limits) {
    let mut table = Table::new(
        "T7 — classic primitives vs the paper's objects (one machinery)",
        vec!["object", "protocol", "processes", "verdict"],
    );

    let prims = [
        (RacePrimitive::TestAndSet, "test-and-set"),
        (RacePrimitive::FetchAdd, "fetch-and-add"),
        (RacePrimitive::Queue, "queue (pre-loaded)"),
    ];

    for (prim, name) in prims {
        // Direct 2-process protocol: exhaustive pass.
        let inputs = mixed_binary_inputs(2);
        let p = ClassicConsensus::two_process(prim, inputs.clone()).expect("2 inputs");
        let objects = p.objects();
        let ex = Explorer::new(&p, &objects).with_trace(exp.tracer());
        let verdict = match check_consensus(&ex, &inputs, limits) {
            Ok(s) => format!("consensus verified ({} configs)", s.configs),
            Err(v) => format!("UNEXPECTED: {v}"),
        };
        table.row(vec![
            name.into(),
            "direct (read-the-other)".into(),
            "2".into(),
            verdict,
        ]);

        // Announce generalization: refuted at 2 and 3.
        for n in [2usize, 3] {
            let inputs = mixed_binary_inputs(n);
            let p = AnnounceConsensus::new(prim, inputs.clone());
            let objects = p.objects();
            let ex = Explorer::new(&p, &objects).with_trace(exp.tracer());
            let verdict = match check_consensus(&ex, &inputs, limits) {
                Err(Violation::NonTermination(w)) => {
                    format!("refuted: non-termination (cycle len {})", w.cycle.len())
                }
                Err(v) => format!("refuted: {v}"),
                Ok(_) => "NOT REFUTED (machinery bug)".into(),
            };
            table.row(vec![
                name.into(),
                "announce-and-spin".into(),
                n.to_string(),
                verdict,
            ]);
        }
    }

    // CAS: consensus for every process count checked.
    for n in [2usize, 3, 4, 5] {
        let inputs: Vec<Value> = mixed_binary_inputs(n);
        let p = ClassicConsensus::cas(inputs.clone());
        let objects = p.objects();
        let ex = Explorer::new(&p, &objects).with_trace(exp.tracer());
        let verdict = match check_consensus(&ex, &inputs, limits) {
            Ok(s) => format!("consensus verified ({} configs)", s.configs),
            Err(v) => format!("UNEXPECTED: {v}"),
        };
        table.row(vec![
            "compare-and-swap".into(),
            "CAS(nil -> input)".into(),
            n.to_string(),
            verdict,
        ]);
    }

    // The paper's objects, for contrast (same certification machinery).
    for (name, obj, face) in [
        ("O_2", AnyObject::o_n(2).expect("valid"), Face::ProposeC),
        (
            "O'_2",
            AnyObject::o_prime_n(2, 2).expect("valid"),
            Face::PowerLevel1,
        ),
        ("O_3", AnyObject::o_n(3).expect("valid"), Face::ProposeC),
    ] {
        let cert = certified_consensus_number(&obj, face, 5, limits).expect("certifies");
        table.row(vec![
            name.into(),
            "canonical propose".into(),
            format!("level {}", cert.level),
            format!("certified; n+1 refuted: {}", cert.refutation),
        ]);
    }

    exp.table(table);
    exp.note("The read-the-other trick makes the level-2 primitives wait-free for two");
    exp.note("processes; its absence at three is the hierarchy boundary. CAS has no");
    exp.note("such boundary. The paper's O_n / O'_n slot in at level n — and T5 shows");
    exp.note("that level alone (even with set agreement power) does not equate them.");
}
