//! **Experiment F8** — vote propagation: the first sampling-only workload
//! family.
//!
//! A commitment-cascade model over a random partially-connected network
//! (see [`lbsa_protocols::vote_propagation`]): nodes accumulate `+1`
//! votes in shared mailboxes and commit once their balance crosses a
//! threshold. Its state space explodes with the node count (every mailbox
//! counter is configuration state), so — unlike T1–T6 — no cell of this
//! sweep is exhaustively checkable at the sizes used here. Each cell runs
//! the parallel sampling engine through the unified Strategy API
//! (`exploration().sample(..).check_consensus(..)`) and reports the
//! sampled verdict with its confidence bound.
//!
//! The sweep crosses **connectivity** (outgoing edges per node) with the
//! **starting-set size** and the **bidirectional-edge probability**,
//! showing how quiescence and cascade behaviour respond to topology.
//!
//! Run with `cargo run --release -p lbsa-bench --bin
//! exp_f8_vote_propagation` (`--n`, `--runs`, and `--max-rounds` shrink
//! the sweep for CI smoke runs).

use lbsa_bench::harness::run_experiment;
use lbsa_core::value::int;
use lbsa_explorer::{Explorer, Outcome, SampleConfig};
use lbsa_hierarchy::report::Table;
use lbsa_protocols::vote_propagation::VotePropagation;

fn main() {
    run_experiment(
        "exp_f8_vote_propagation",
        "F8 — vote propagation under sampled checking",
        |exp| {
            body(exp);
        },
    );
}

fn body(exp: &mut lbsa_bench::harness::Experiment) {
    let n = exp.arg_usize("n", 10);
    let runs = u64::try_from(exp.arg_usize("runs", 300)).expect("runs fits u64");
    let max_rounds = u32::try_from(exp.arg_usize("max-rounds", 8)).expect("rounds fit u32");
    exp.param("n", n);
    exp.param("runs", runs);
    exp.param("max_rounds", max_rounds);

    let mut table = Table::new(
        "F8 — vote propagation under sampled checking",
        vec![
            "connectivity",
            "starters",
            "bidi p",
            "runs",
            "quiescent",
            "steps",
            "violation rate <",
            "verdict",
        ],
    );

    let starters = [1usize, (n / 3).max(2)];
    let bidi = [(0u64, 2u64, "0"), (1, 2, "1/2"), (2, 2, "1")];
    let mut cell = 0u64;
    for connectivity in [1usize, 2, 3] {
        for &start_count in &starters {
            for &(num, den, p_label) in &bidi {
                cell += 1;
                let label = format!("f8.c{connectivity}.s{start_count}.p{num}of{den}");
                let protocol = VotePropagation::random(
                    n,
                    connectivity,
                    start_count,
                    num,
                    den,
                    0xF8_0000 + cell,
                )
                .expect("sweep parameters are valid")
                .with_max_rounds(max_rounds);
                let mailboxes = protocol.mailboxes();
                let verdict = Explorer::new(&protocol, &mailboxes)
                    .with_trace(exp.tracer())
                    .exploration()
                    .sample(SampleConfig {
                        runs,
                        seed0: cell * 1_000_000,
                        max_steps: 100_000,
                        ..SampleConfig::default()
                    })
                    .check_consensus(&[int(1)]);
                let row_tail = match &verdict.outcome {
                    Outcome::HoldsSampled {
                        runs,
                        quiescent,
                        confidence,
                        ..
                    } => {
                        exp.metric(&format!("{label}.quiescent"), *quiescent);
                        exp.metric(&format!("{label}.steps"), verdict.stats.transitions);
                        vec![
                            runs.to_string(),
                            quiescent.to_string(),
                            verdict.stats.transitions.to_string(),
                            format!("{:.2e}", 1.0 - confidence),
                            "holds (sampled)".into(),
                        ]
                    }
                    _ => vec![
                        String::new(),
                        String::new(),
                        String::new(),
                        String::new(),
                        verdict.describe(),
                    ],
                };
                let mut row = vec![
                    connectivity.to_string(),
                    start_count.to_string(),
                    p_label.to_string(),
                ];
                row.extend(row_tail);
                table.row(row);
                exp.verdict(&label, &verdict);
            }
        }
    }

    exp.table(table);
    exp.note("Every cell is beyond the exhaustive frontier: verdicts are sampled, with a");
    exp.note("Clopper-Pearson 95% upper bound on the per-run violation rate. The only");
    exp.note("decidable value is 1, so agreement/validity hold by construction; the sweep");
    exp.note("measures quiescence and cascade behaviour across topologies.");
}
