//! **Experiment F2** — the bivalency adversary at work.
//!
//! For each target, reports (i) how long the greedy bivalency-preserving
//! adversary keeps the outcome open, and (ii) the size of the
//! non-termination certificate (prefix + cycle) when one exists. The
//! contrast reproduces the mechanics of the paper's impossibility proofs:
//! against *solvable* instances the adversary gets stuck immediately (some
//! step seals the outcome — the critical configuration); against the doomed
//! candidates it loops forever.
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_f2_adversary_survival`.

use lbsa_bench::harness::run_experiment;
use lbsa_bench::mixed_binary_inputs;
use lbsa_core::{AnyObject, ObjId};
use lbsa_explorer::adversary::{bivalent_survival, find_nontermination};
use lbsa_explorer::valency::ValencyAnalysis;
use lbsa_explorer::{Explorer, Tracer};
use lbsa_hierarchy::report::Table;
use lbsa_protocols::candidates::{SaThenConsensus, WaitForWinner};
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_runtime::process::Protocol;

fn analyze<P: Protocol>(
    name: &str,
    protocol: &P,
    objects: &[AnyObject],
    tracer: Tracer,
    table: &mut Table,
) {
    let g = Explorer::new(protocol, objects)
        .with_trace(tracer)
        .exploration()
        .max_configs(5_000_000)
        .run()
        .expect("explorable");
    let va = ValencyAnalysis::analyze(&g);
    let (barren, univalent, multivalent) = va.census();
    let survival = bivalent_survival(&g, &va, 100_000);
    let witness = find_nontermination(&g);
    let crit = va.critical_configurations(&g).len();
    table.row(vec![
        name.to_string(),
        g.configs.len().to_string(),
        format!("{barren}/{univalent}/{multivalent}"),
        crit.to_string(),
        if survival.looped {
            "unbounded (loops)".to_string()
        } else if survival.stuck {
            format!("stuck after {}", survival.steps)
        } else {
            format!(">= {}", survival.steps)
        },
        match witness {
            Some(w) => format!("prefix {} + cycle {}", w.prefix.len(), w.cycle.len()),
            None => "none (wait-free)".to_string(),
        },
    ]);
}

fn main() {
    run_experiment(
        "exp_f2_adversary_survival",
        "F2 — bivalency adversary: survival and certificates",
        |exp| {
            body(exp);
        },
    );
}

fn body(exp: &mut lbsa_bench::harness::Experiment) {
    let mut table = Table::new(
        "F2 — bivalency adversary: survival and certificates",
        vec![
            "target",
            "configs",
            "barren/uni/multi",
            "critical configs",
            "adversary survival",
            "non-termination certificate",
        ],
    );

    // Solvable: consensus race on a real consensus object.
    let p = ConsensusViaObject::new(mixed_binary_inputs(2), ObjId(0));
    let objects = vec![AnyObject::consensus(2).expect("valid")];
    analyze(
        "2-consensus race (solvable)",
        &p,
        &objects,
        exp.tracer(),
        &mut table,
    );

    let p = ConsensusViaObject::new(mixed_binary_inputs(3), ObjId(0));
    let objects = vec![AnyObject::consensus(3).expect("valid")];
    analyze(
        "3-consensus race (solvable)",
        &p,
        &objects,
        exp.tracer(),
        &mut table,
    );

    // Doomed: wait-for-winner with one process too many.
    let p = WaitForWinner::new(mixed_binary_inputs(3));
    let objects = vec![
        AnyObject::consensus(2).expect("valid"),
        AnyObject::register(),
    ];
    analyze(
        "wait-for-winner, 3 procs (doomed)",
        &p,
        &objects,
        exp.tracer(),
        &mut table,
    );

    // Doomed: the 2-SA narrowing attempt.
    let p = SaThenConsensus::new(mixed_binary_inputs(3));
    let objects = vec![
        AnyObject::strong_sa(),
        AnyObject::consensus(2).expect("valid"),
    ];
    analyze(
        "2-SA narrow + tie-break (doomed)",
        &p,
        &objects,
        exp.tracer(),
        &mut table,
    );

    exp.table(table);
    exp.note("Reading: solvable targets leave the adversary stuck at a critical");
    exp.note("configuration almost immediately; doomed candidates let it survive");
    exp.note("forever (a loop) or exhibit an outright non-termination certificate.");
}
