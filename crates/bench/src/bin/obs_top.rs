//! `obs_top` — the live run cockpit.
//!
//! Tails a `trace.jsonl` produced by a traced exploration (see
//! `Exploration::trace` + `Exploration::progress_every`) and renders a
//! refreshing terminal dashboard:
//!
//! * the headline from the latest `progress` event — strategy, configs
//!   expanded, instantaneous + EMA configs/sec, frontier depth, worker
//!   utilization, ETA, and approximate memory footprint;
//! * per-worker rows built from the `ws.expand` beats — expansion rate
//!   bars plus steal attribution (`ws.steal` hits, who stole from whom);
//! * sampling sweeps from the `sample.batch` / `sample.end` events.
//!
//! In `--follow` mode the file is tailed while it grows: partial lines
//! (a writer mid-`write`) are buffered until their newline arrives, so a
//! concurrently-written trace always parses cleanly. The dashboard stops
//! on the final `progress` event (or `explore.end` / `sample.end` when no
//! sampler ran), or after `--frames N` refreshes — the latter makes the
//! follow loop deterministic for tests and demos.
//!
//! Usage:
//!   obs_top <trace.jsonl> [--follow] [--interval-ms N] [--frames N] [--no-clear]
//!
//! `--no-clear` appends frames instead of redrawing in place (useful when
//! piping to a file or reading the output in a test).

use lbsa_support::json::Json;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::Path;

/// Width of the per-worker expansion bar.
const BAR_WIDTH: usize = 24;

/// Default refresh cadence in follow mode.
const DEFAULT_INTERVAL_MS: u64 = 250;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!(
            "usage: obs_top <trace.jsonl> [--follow] [--interval-ms N] [--frames N] [--no-clear]"
        );
        std::process::exit(2);
    };
    let follow = args.iter().any(|a| a == "--follow");
    let clear = !args.iter().any(|a| a == "--no-clear");
    let interval = std::time::Duration::from_millis(
        flag_u64(&args, "--interval-ms").unwrap_or(DEFAULT_INTERVAL_MS),
    );
    let frames = flag_u64(&args, "--frames").map(|n| n as usize);
    let mut out = std::io::stdout().lock();
    let result = if follow {
        follow_trace(Path::new(path), interval, frames, clear, &mut out)
    } else {
        render_once(Path::new(path), &mut out)
    };
    if let Err(err) = result {
        eprintln!("obs_top: {path}: {err}");
        std::process::exit(2);
    }
}

/// Parses `--flag <u64>` out of the argument list.
fn flag_u64(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// One-shot mode: ingest the whole trace, render a single frame.
fn render_once(path: &Path, out: &mut impl Write) -> std::io::Result<()> {
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    let mut cockpit = Cockpit::default();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        cockpit.ingest_line(&line);
    }
    out.write_all(cockpit.render_frame().as_bytes())
}

/// Follow mode: tail the file as it grows, redrawing after every drain.
/// Returns once the trace reports completion or `max_frames` is reached.
fn follow_trace(
    path: &Path,
    interval: std::time::Duration,
    max_frames: Option<usize>,
    clear: bool,
    out: &mut impl Write,
) -> std::io::Result<()> {
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    let mut cockpit = Cockpit::default();
    // Carries a partial line (writer caught mid-write) across drains.
    let mut pending = String::new();
    let mut frames = 0usize;
    loop {
        loop {
            let read = reader.read_line(&mut pending)?;
            if read == 0 {
                break;
            }
            if pending.ends_with('\n') {
                cockpit.ingest_line(&pending);
                pending.clear();
            }
        }
        if clear {
            out.write_all(b"\x1b[2J\x1b[H")?;
        }
        out.write_all(cockpit.render_frame().as_bytes())?;
        out.flush()?;
        frames += 1;
        if cockpit.finished || max_frames.is_some_and(|m| frames >= m) {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

/// Accumulated per-worker view, fed by `ws.expand` beats and finalized by
/// the assembly-time `ws.worker` summary.
#[derive(Default)]
struct WorkerRow {
    expanded: i64,
    /// Last two beats as `(t_us, expanded)`, for the instantaneous rate.
    prev_beat: Option<(i64, i64)>,
    rate_per_sec: f64,
    steals: i64,
    /// Steal hits attributed per victim worker id.
    victims: BTreeMap<i64, i64>,
}

/// The dashboard model: everything one frame renders, folded one event at
/// a time so follow mode never re-reads the trace.
#[derive(Default)]
struct Cockpit {
    events: usize,
    parse_errors: usize,
    strategy: Option<String>,
    threads: i64,
    /// Latest `progress` event, verbatim.
    progress: Option<Json>,
    progress_seen: usize,
    workers: BTreeMap<i64, WorkerRow>,
    sample_batches: usize,
    sample_runs: i64,
    finished: bool,
}

impl Cockpit {
    /// Folds one JSONL line into the model. Malformed lines are counted,
    /// not fatal: a tail can race a writer even with line buffering.
    fn ingest_line(&mut self, line: &str) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        match Json::parse(line) {
            Ok(event) => self.ingest(&event),
            Err(_) => self.parse_errors += 1,
        }
    }

    fn ingest(&mut self, event: &Json) {
        self.events += 1;
        let t_us = event.get("t_us").and_then(Json::as_i64).unwrap_or(0);
        match event.get("event").and_then(Json::as_str).unwrap_or("") {
            "explore.begin" | "sample.begin" => {
                if let Some(threads) = event.get("threads").and_then(Json::as_i64) {
                    self.threads = threads;
                }
            }
            "progress" => {
                self.progress_seen += 1;
                if let Some(strategy) = event.get("strategy").and_then(Json::as_str) {
                    self.strategy = Some(strategy.to_string());
                }
                if event.get("final").and_then(Json::as_bool) == Some(true) {
                    self.finished = true;
                }
                self.progress = Some(event.clone());
            }
            "ws.expand" | "ws.done" => {
                let Some(id) = event.get("worker").and_then(Json::as_i64) else {
                    return;
                };
                let expanded = event.get("expanded").and_then(Json::as_i64).unwrap_or(0);
                let row = self.workers.entry(id).or_default();
                row.expanded = row.expanded.max(expanded);
                if let Some((prev_t, prev_expanded)) = row.prev_beat {
                    let dt_us = t_us - prev_t;
                    if dt_us > 0 {
                        row.rate_per_sec =
                            (expanded - prev_expanded) as f64 * 1_000_000.0 / dt_us as f64;
                    }
                }
                row.prev_beat = Some((t_us, expanded));
            }
            "ws.steal" => {
                if event.get("outcome").and_then(Json::as_str) != Some("hit") {
                    return;
                }
                let (Some(thief), Some(victim)) = (
                    event.get("worker").and_then(Json::as_i64),
                    event.get("victim").and_then(Json::as_i64),
                ) else {
                    return;
                };
                let row = self.workers.entry(thief).or_default();
                row.steals += 1;
                *row.victims.entry(victim).or_insert(0) += 1;
            }
            "ws.worker" => {
                let Some(id) = event.get("worker").and_then(Json::as_i64) else {
                    return;
                };
                let row = self.workers.entry(id).or_default();
                row.expanded = row
                    .expanded
                    .max(event.get("expanded").and_then(Json::as_i64).unwrap_or(0));
                row.steals = row
                    .steals
                    .max(event.get("steals").and_then(Json::as_i64).unwrap_or(0));
            }
            "sample.batch" => {
                self.sample_batches += 1;
                if let Some(tried) = event.get("seeds_tried").and_then(Json::as_i64) {
                    self.sample_runs = self.sample_runs.max(tried);
                }
            }
            "explore.end" | "sample.end" => {
                // Without a sampler there is no final progress event; the
                // engine's own end marker closes the dashboard instead.
                if self.progress_seen == 0 {
                    self.finished = true;
                }
                if let Some(runs) = event.get("runs").and_then(Json::as_i64) {
                    self.sample_runs = self.sample_runs.max(runs);
                }
            }
            _ => {}
        }
    }

    /// Renders one dashboard frame as a newline-terminated string.
    fn render_frame(&self) -> String {
        let mut frame = String::new();
        let strategy = self.strategy.as_deref().unwrap_or("waiting for events");
        let status = if self.finished { "done" } else { "live" };
        frame.push_str(&format!(
            "obs_top · {strategy} · {} workers · {} events · {status}\n",
            self.threads.max(self.workers.len() as i64),
            self.events,
        ));
        if let Some(p) = &self.progress {
            let configs = p.get("configs").and_then(Json::as_i64).unwrap_or(0);
            let inst = p
                .get("configs_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let ema = p
                .get("ema_configs_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            let frontier = p.get("frontier_depth").and_then(Json::as_i64).unwrap_or(0);
            let util = p.get("utilization").and_then(Json::as_f64).unwrap_or(0.0);
            let eta_us = p.get("eta_us").and_then(Json::as_i64).unwrap_or(-1);
            let mem = p.get("mem_bytes").and_then(Json::as_i64).unwrap_or(0);
            let elapsed_us = p.get("elapsed_us").and_then(Json::as_i64).unwrap_or(0);
            frame.push_str(&format!(
                "  configs {configs} ({}/s now, {}/s ema) · frontier {frontier} · util {:.0}% · eta {} · mem {} · t {}\n",
                fmt_rate(inst),
                fmt_rate(ema),
                util * 100.0,
                fmt_eta(eta_us),
                fmt_bytes(mem),
                fmt_duration_us(elapsed_us),
            ));
        } else {
            frame.push_str("  no progress events yet (run with Exploration::progress_every)\n");
        }
        if !self.workers.is_empty() {
            let max_expanded = self
                .workers
                .values()
                .map(|w| w.expanded)
                .max()
                .unwrap_or(0)
                .max(1);
            for (id, row) in &self.workers {
                let fill = (row.expanded * BAR_WIDTH as i64 / max_expanded).max(0) as usize;
                let bar: String = "█".repeat(fill.min(BAR_WIDTH));
                let pad: String = "·".repeat(BAR_WIDTH - fill.min(BAR_WIDTH));
                let victims = if row.victims.is_empty() {
                    String::new()
                } else {
                    let parts: Vec<String> = row
                        .victims
                        .iter()
                        .map(|(v, n)| format!("{v}:{n}"))
                        .collect();
                    format!(" stole from {}", parts.join(" "))
                };
                frame.push_str(&format!(
                    "  worker {id} {bar}{pad} {} expanded, {}/s, {} steals{victims}\n",
                    row.expanded,
                    fmt_rate(row.rate_per_sec),
                    row.steals,
                ));
            }
        }
        if self.sample_batches > 0 || self.sample_runs > 0 {
            frame.push_str(&format!(
                "  sampling: {} batches, {} runs\n",
                self.sample_batches, self.sample_runs,
            ));
        }
        if self.parse_errors > 0 {
            frame.push_str(&format!(
                "  ({} unparseable lines skipped)\n",
                self.parse_errors
            ));
        }
        frame
    }
}

/// Rate formatting: `8.4k/s` territory, without pulling in a formatter.
fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1_000_000.0 {
        format!("{:.1}M", per_sec / 1_000_000.0)
    } else if per_sec >= 1_000.0 {
        format!("{:.1}k", per_sec / 1_000.0)
    } else {
        format!("{per_sec:.0}")
    }
}

fn fmt_bytes(bytes: i64) -> String {
    let b = bytes.max(0) as f64;
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2}GiB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.1}MiB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.1}KiB", b / 1024.0)
    } else {
        format!("{bytes}B")
    }
}

fn fmt_duration_us(us: i64) -> String {
    if us >= 1_000_000 {
        format!("{:.1}s", us as f64 / 1_000_000.0)
    } else {
        format!("{}ms", us / 1000)
    }
}

/// ETA formatting: `-1` means the model has no estimate yet, `0` means the
/// run is over.
fn fmt_eta(eta_us: i64) -> String {
    match eta_us {
        i64::MIN..=-1 => "—".to_string(),
        0 => "done".to_string(),
        _ => fmt_duration_us(eta_us),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(cockpit: &mut Cockpit, lines: &[&str]) {
        for line in lines {
            cockpit.ingest_line(line);
        }
    }

    /// A realistic excerpt: the shapes the explorer actually emits (see
    /// the `progress` schema in `crates/explorer/src/live.rs`).
    const RECORDED: &[&str] = &[
        r#"{"seq":0,"t_us":0,"event":"explore.begin","threads":4,"frontier":"work-stealing"}"#,
        r#"{"seq":1,"t_us":1000,"event":"ws.expand","worker":0,"expanded":100,"busy_us":900}"#,
        r#"{"seq":2,"t_us":1500,"event":"ws.steal","worker":1,"victim":0,"outcome":"hit","latency_us":2}"#,
        r#"{"seq":3,"t_us":2000,"event":"ws.expand","worker":0,"expanded":300,"busy_us":1800}"#,
        r#"{"seq":4,"t_us":2200,"event":"ws.steal","worker":1,"victim":0,"outcome":"hit","latency_us":1}"#,
        r#"{"seq":5,"t_us":2500,"event":"ws.expand","worker":1,"expanded":80,"busy_us":700}"#,
        r#"{"seq":6,"t_us":2600,"event":"progress","strategy":"work-stealing","configs":380,"configs_per_sec":146153.8,"ema_configs_per_sec":120000.0,"frontier_depth":42,"workers":4,"utilization":0.75,"eta_us":310000,"mem_bytes":1048576,"elapsed_us":2600,"final":false}"#,
    ];

    #[test]
    fn cockpit_folds_recorded_trace_lines() {
        let mut cockpit = Cockpit::default();
        feed(&mut cockpit, RECORDED);
        assert_eq!(cockpit.events, RECORDED.len());
        assert_eq!(cockpit.parse_errors, 0);
        assert_eq!(cockpit.threads, 4);
        assert_eq!(cockpit.strategy.as_deref(), Some("work-stealing"));
        assert_eq!(cockpit.progress_seen, 1);
        assert!(!cockpit.finished, "no final progress event yet");
        let w0 = &cockpit.workers[&0];
        assert_eq!(w0.expanded, 300);
        // 200 more configs over the 1000us between the two beats.
        assert!((w0.rate_per_sec - 200_000.0).abs() < 1.0);
        let w1 = &cockpit.workers[&1];
        assert_eq!(w1.steals, 2);
        assert_eq!(w1.victims[&0], 2);
    }

    #[test]
    fn final_progress_event_closes_the_dashboard() {
        let mut cockpit = Cockpit::default();
        feed(&mut cockpit, RECORDED);
        cockpit.ingest_line(
            r#"{"seq":7,"t_us":3000,"event":"progress","strategy":"work-stealing","configs":500,"configs_per_sec":0.0,"ema_configs_per_sec":0.0,"frontier_depth":0,"workers":4,"utilization":1.0,"eta_us":0,"mem_bytes":2097152,"elapsed_us":3000,"final":true}"#,
        );
        assert!(cockpit.finished);
        let frame = cockpit.render_frame();
        assert!(frame.contains("done"), "frame: {frame}");
        assert!(frame.contains("configs 500"), "frame: {frame}");
        assert!(frame.contains("mem 2.0MiB"), "frame: {frame}");
        assert!(frame.contains("eta done"), "frame: {frame}");
    }

    #[test]
    fn untraced_progress_runs_end_on_explore_end() {
        let mut cockpit = Cockpit::default();
        cockpit.ingest_line(r#"{"event":"explore.begin","threads":1,"frontier":"bfs"}"#);
        cockpit.ingest_line(r#"{"event":"explore.end","configs":10,"elapsed_us":50}"#);
        assert!(cockpit.finished, "explore.end closes an untraced dashboard");
    }

    #[test]
    fn frame_renders_rates_eta_and_steal_attribution() {
        let mut cockpit = Cockpit::default();
        feed(&mut cockpit, RECORDED);
        let frame = cockpit.render_frame();
        assert!(frame.contains("work-stealing"), "frame: {frame}");
        assert!(frame.contains("configs 380"), "frame: {frame}");
        assert!(frame.contains("frontier 42"), "frame: {frame}");
        assert!(frame.contains("util 75%"), "frame: {frame}");
        assert!(frame.contains("eta 310ms"), "frame: {frame}");
        assert!(frame.contains("mem 1.0MiB"), "frame: {frame}");
        assert!(frame.contains("stole from 0:2"), "frame: {frame}");
        assert!(frame.contains("worker 0"), "frame: {frame}");
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let mut cockpit = Cockpit::default();
        cockpit.ingest_line("{not json");
        cockpit.ingest_line("");
        cockpit
            .ingest_line(r#"{"event":"progress","strategy":"sampling","configs":7,"final":false}"#);
        assert_eq!(cockpit.parse_errors, 1);
        assert_eq!(cockpit.progress_seen, 1);
        assert!(cockpit
            .render_frame()
            .contains("1 unparseable lines skipped"));
    }

    #[test]
    fn formatting_helpers_cover_their_ranges() {
        assert_eq!(fmt_rate(900.0), "900");
        assert_eq!(fmt_rate(8_400.0), "8.4k");
        assert_eq!(fmt_rate(2_500_000.0), "2.5M");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MiB");
        assert_eq!(fmt_eta(-1), "—");
        assert_eq!(fmt_eta(0), "done");
        assert_eq!(fmt_eta(1_500_000), "1.5s");
    }

    /// The acceptance path: a writer thread grows the trace while
    /// `follow_trace` tails it, and the dashboard renders in-flight
    /// progress frames before the final event lands.
    #[test]
    fn follow_mode_renders_frames_from_a_growing_file() {
        let path = std::env::temp_dir().join(format!(
            "obs_top_follow_{}_{:?}.trace.jsonl",
            std::process::id(),
            std::thread::current().id(),
        ));
        std::fs::write(&path, "").expect("create trace");
        let writer_path = path.clone();
        let writer = std::thread::spawn(move || {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&writer_path)
                .expect("open for append");
            for i in 0..10i64 {
                let done = i == 9;
                writeln!(
                    f,
                    r#"{{"seq":{i},"t_us":{t},"event":"progress","strategy":"work-stealing","configs":{c},"configs_per_sec":1000.0,"ema_configs_per_sec":1000.0,"frontier_depth":{fd},"workers":4,"utilization":0.9,"eta_us":{eta},"mem_bytes":4096,"elapsed_us":{t},"final":{done}}}"#,
                    t = (i + 1) * 5000,
                    c = (i + 1) * 100,
                    fd = if done { 0 } else { 50 },
                    eta = if done { 0 } else { 45000 },
                )
                .expect("append progress line");
                f.flush().expect("flush");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        let mut out = Vec::new();
        follow_trace(
            &path,
            std::time::Duration::from_millis(2),
            Some(500),
            false,
            &mut out,
        )
        .expect("follow the growing trace");
        writer.join().expect("writer thread");
        let rendered = String::from_utf8(out).expect("utf8 frames");
        let frames = rendered.matches("obs_top ·").count();
        assert!(
            frames >= 2,
            "expected multiple frames, got {frames}:\n{rendered}"
        );
        assert!(
            rendered.contains("live"),
            "an in-flight frame rendered before the final event:\n{rendered}"
        );
        assert!(
            rendered.contains("configs 1000"),
            "final configs:\n{rendered}"
        );
        assert!(rendered.contains("done"), "final frame:\n{rendered}");
        std::fs::remove_file(&path).ok();
    }
}
