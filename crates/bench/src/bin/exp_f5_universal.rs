//! **Experiment F5** — the universal construction (Herlihy \[10\]).
//!
//! Simulates a register and a 2-PAC object from consensus objects +
//! registers, and reports the cost: base steps per front-end operation
//! under round-robin scheduling, and the exhaustive equivalence check
//! (simulated terminal outcomes = native terminal outcomes).
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_f5_universal`.

use lbsa_bench::harness::run_experiment;
use lbsa_core::ids::Label;
use lbsa_core::value::int;
use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
use lbsa_explorer::Explorer;
use lbsa_hierarchy::report::Table;
use lbsa_protocols::universal::UniversalProcedure;
use lbsa_runtime::derived::{record_frontend_history, DerivedProtocol};
use lbsa_runtime::outcome::FirstOutcome;
use lbsa_runtime::process::{Protocol, Step};
use lbsa_runtime::scheduler::RoundRobin;
use std::collections::BTreeSet;

/// Each of `n` processes performs `rounds` write-then-read pairs on the
/// simulated register, then halts.
#[derive(Debug)]
struct RegisterChurn {
    n: usize,
    rounds: u8,
}

impl Protocol for RegisterChurn {
    type LocalState = (u8, bool); // (round, writing?)
    fn num_processes(&self) -> usize {
        self.n
    }
    fn init(&self, _pid: Pid) -> (u8, bool) {
        (0, true)
    }
    fn pending_op(&self, pid: Pid, s: &(u8, bool)) -> (ObjId, Op) {
        if s.1 {
            (ObjId(0), Op::Write(int(pid.index() as i64 + 1)))
        } else {
            (ObjId(0), Op::Read)
        }
    }
    fn on_response(&self, _pid: Pid, s: &(u8, bool), _r: Value) -> Step<(u8, bool)> {
        match s {
            (round, true) => Step::Continue((*round, false)),
            (round, false) if round + 1 < self.rounds => Step::Continue((round + 1, true)),
            _ => Step::Halt,
        }
    }
}

fn register_table_ops(n: usize) -> Vec<Op> {
    let mut ops = vec![Op::Read];
    ops.extend((1..=n).map(|i| Op::Write(int(i as i64))));
    ops
}

fn main() {
    run_experiment(
        "exp_f5_universal",
        "F5 — the universal construction: cost and exhaustive equivalence",
        |exp| {
            body(exp);
        },
    );
}

fn body(exp: &mut lbsa_bench::harness::Experiment) {
    let mut table = Table::new(
        "F5 — universal construction cost (register churn, round-robin)",
        vec![
            "processes",
            "rounds",
            "front-end ops",
            "base steps",
            "steps/op",
        ],
    );

    for (n, rounds) in [(2usize, 2u8), (2, 3), (3, 2), (4, 1)] {
        let uni = UniversalProcedure::new(
            AnyObject::register(),
            register_table_ops(n),
            n,
            (2 * rounds as usize) * n + 2,
        )
        .expect("valid");
        let inner = RegisterChurn { n, rounds };
        let derived = DerivedProtocol::new(&inner, &uni, vec![uni.frontend(0)]);
        let objects = uni.base_objects().expect("valid");
        let (history, result) = record_frontend_history(
            &derived,
            &objects,
            &mut RoundRobin::new(),
            &mut FirstOutcome,
            1_000_000,
        )
        .expect("runs");
        let front_ops = history.len();
        let steps = result.steps;
        table.row(vec![
            n.to_string(),
            rounds.to_string(),
            front_ops.to_string(),
            steps.to_string(),
            format!("{:.1}", steps as f64 / front_ops.max(1) as f64),
        ]);
    }
    exp.table(table);

    // Equivalence check: the simulated 2-PAC realizes exactly the native
    // outcome set, exhaustively.
    #[derive(Debug)]
    struct PacPairs;
    impl Protocol for PacPairs {
        type LocalState = u8;
        fn num_processes(&self) -> usize {
            2
        }
        fn init(&self, _pid: Pid) -> u8 {
            0
        }
        fn pending_op(&self, pid: Pid, s: &u8) -> (ObjId, Op) {
            let label = Label::new(pid.index() + 1).expect("valid");
            match s {
                0 => (
                    ObjId(0),
                    Op::ProposePac(int(10 + pid.index() as i64), label),
                ),
                _ => (ObjId(0), Op::DecidePac(label)),
            }
        }
        fn on_response(&self, _pid: Pid, s: &u8, resp: Value) -> Step<u8> {
            match s {
                0 => Step::Continue(1),
                _ => Step::Decide(resp),
            }
        }
    }
    let l1 = Label::new(1).expect("valid");
    let l2 = Label::new(2).expect("valid");
    let pac_ops = vec![
        Op::ProposePac(int(10), l1),
        Op::ProposePac(int(11), l2),
        Op::DecidePac(l1),
        Op::DecidePac(l2),
    ];
    let inner = PacPairs;
    let native_objects = vec![AnyObject::pac(2).expect("valid")];
    let native_g = Explorer::new(&inner, &native_objects)
        .with_trace(exp.tracer())
        .exploration()
        .run()
        .expect("explorable");
    let native: BTreeSet<Vec<Option<Value>>> = native_g
        .terminal_indices()
        .map(|t| native_g.configs[t].decisions())
        .collect();

    let uni =
        UniversalProcedure::new(AnyObject::pac(2).expect("valid"), pac_ops, 2, 8).expect("valid");
    let derived = DerivedProtocol::new(&inner, &uni, vec![uni.frontend(0)]);
    let objects = uni.base_objects().expect("valid");
    let sim_g = Explorer::new(&derived, &objects)
        .with_trace(exp.tracer())
        .exploration()
        .run()
        .expect("explorable");
    let simulated: BTreeSet<Vec<Option<Value>>> = sim_g
        .terminal_indices()
        .map(|t| sim_g.configs[t].decisions())
        .collect();

    exp.metric("universal.native.configs", native_g.configs.len());
    exp.metric("universal.simulated.configs", sim_g.configs.len());
    exp.note(format!(
        "Simulated 2-PAC terminal outcomes == native: {}",
        native == simulated
    ));
    exp.note(format!(
        "(native graph: {} configs; simulated graph: {} configs)",
        native_g.configs.len(),
        sim_g.configs.len()
    ));
}
