//! **Experiment F1** — state-space scaling of exhaustive exploration.
//!
//! Measures how the execution-graph size grows with the number of
//! processes, for the two workhorse workloads of the experiments: the
//! one-shot consensus race and Algorithm 2 (whose retry loops make the
//! graph cyclic and denser).
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_f1_statespace`.

use lbsa_bench::{distinct_inputs, mixed_binary_inputs};
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::{Explorer, Limits};
use lbsa_hierarchy::report::Table;
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_protocols::dac::DacFromPac;
use lbsa_protocols::set_agreement_protocols::KSetViaStrongSa;
use std::time::Instant;

fn main() {
    let limits = Limits::new(5_000_000);
    let mut table = Table::new(
        "F1 — execution-graph size vs processes (exhaustive exploration)",
        vec!["workload", "processes", "configs", "transitions", "cyclic", "time (ms)"],
    );

    for n in 2..=7usize {
        let inputs = mixed_binary_inputs(n);
        let p = ConsensusViaObject::new(inputs, ObjId(0));
        let objects = vec![AnyObject::consensus(n).expect("valid")];
        let start = Instant::now();
        let g = Explorer::new(&p, &objects).explore(limits).expect("explorable");
        let ms = start.elapsed().as_millis();
        table.row(vec![
            "consensus race".into(),
            n.to_string(),
            g.configs.len().to_string(),
            g.transitions.to_string(),
            g.has_cycle().to_string(),
            ms.to_string(),
        ]);
    }

    for n in 2..=5usize {
        let inputs = mixed_binary_inputs(n);
        let p = DacFromPac::new(inputs, Pid(0), ObjId(0)).expect("n >= 2");
        let objects = vec![AnyObject::pac(n).expect("valid")];
        let start = Instant::now();
        let g = Explorer::new(&p, &objects).explore(limits).expect("explorable");
        let ms = start.elapsed().as_millis();
        table.row(vec![
            "Algorithm 2 (n-DAC)".into(),
            n.to_string(),
            g.configs.len().to_string(),
            g.transitions.to_string(),
            g.has_cycle().to_string(),
            ms.to_string(),
        ]);
    }

    for n in 2..=6usize {
        let inputs = distinct_inputs(n);
        let p = KSetViaStrongSa::new(inputs, ObjId(0));
        let objects = vec![AnyObject::strong_sa()];
        let start = Instant::now();
        let g = Explorer::new(&p, &objects).explore(limits).expect("explorable");
        let ms = start.elapsed().as_millis();
        table.row(vec![
            "2-SA race (nondet branching)".into(),
            n.to_string(),
            g.configs.len().to_string(),
            g.transitions.to_string(),
            g.has_cycle().to_string(),
            ms.to_string(),
        ]);
    }

    println!("{table}");
}
