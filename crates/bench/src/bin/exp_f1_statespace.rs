//! **Experiment F1** — state-space scaling of exhaustive exploration.
//!
//! Measures how the execution-graph size grows with the number of
//! processes, for the two workhorse workloads of the experiments: the
//! one-shot consensus race and Algorithm 2 (whose retry loops make the
//! graph cyclic and denser). Each row also reports the exploration
//! engine's own metrics — throughput (configs/sec), dedup hit rate, and
//! the worker thread count — taken from [`lbsa_explorer::ExploreStats`].
//!
//! A second table reruns the symmetric instances with symmetry reduction
//! enabled and reports orbit counts next to the raw config counts: the
//! T2 workload gives process 0 input 1 and everyone else input 0, so the
//! non-distinguished processes form one interchangeability class and the
//! quotient graph shrinks by up to |S_{n-1}| = (n-1)!.
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_f1_statespace`.
//! Set `LBSA_EXPLORE_THREADS` to pin the engine's thread count.

use lbsa_bench::harness::run_experiment;
use lbsa_bench::{distinct_inputs, mixed_binary_inputs};
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::{ExplorationGraph, Explorer, Limits};
use lbsa_hierarchy::report::Table;
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_protocols::dac::DacFromPac;
use lbsa_protocols::set_agreement_protocols::KSetViaStrongSa;

fn record_metrics<L>(
    exp: &mut lbsa_bench::harness::Experiment,
    workload: &str,
    n: usize,
    g: &ExplorationGraph<L>,
) where
    L: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    exp.metric(&format!("{workload}.n{n}.configs"), g.configs.len());
    exp.metric(&format!("{workload}.n{n}.transitions"), g.transitions);
    exp.metric(
        &format!("{workload}.n{n}.elapsed_us"),
        g.stats.elapsed.as_micros() as u64,
    );
}

fn stats_row<L>(workload: &str, n: usize, g: &ExplorationGraph<L>) -> Vec<String>
where
    L: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    vec![
        workload.into(),
        n.to_string(),
        g.configs.len().to_string(),
        g.transitions.to_string(),
        g.has_cycle().to_string(),
        format!("{:.1}", g.stats.elapsed.as_secs_f64() * 1e3),
        format!("{:.0}", g.stats.configs_per_sec()),
        format!("{:.1}", 100.0 * g.stats.dedup_rate()),
        g.stats.peak_frontier.to_string(),
        g.stats.threads.to_string(),
    ]
}

fn main() {
    run_experiment(
        "exp_f1_statespace",
        "F1 — execution-graph size vs processes (exhaustive exploration)",
        |exp| {
            let limits = Limits::new(5_000_000);
            exp.param("max_configs", limits.max_configs);
            body(exp, limits);
        },
    );
}

fn body(exp: &mut lbsa_bench::harness::Experiment, limits: Limits) {
    let mut table = Table::new(
        "F1 — execution-graph size vs processes (exhaustive exploration)",
        vec![
            "workload",
            "processes",
            "configs",
            "transitions",
            "cyclic",
            "time (ms)",
            "configs/s",
            "dedup %",
            "peak frontier",
            "threads",
        ],
    );

    for n in 2..=7usize {
        let inputs = mixed_binary_inputs(n);
        let p = ConsensusViaObject::new(inputs, ObjId(0));
        let objects = vec![AnyObject::consensus(n).expect("valid")];
        let g = Explorer::new(&p, &objects)
            .with_trace(exp.tracer())
            .exploration()
            .limits(limits)
            .run()
            .expect("explorable");
        record_metrics(exp, "consensus_race", n, &g);
        table.row(stats_row("consensus race", n, &g));
    }

    for n in 2..=5usize {
        let inputs = mixed_binary_inputs(n);
        let p = DacFromPac::new(inputs, Pid(0), ObjId(0)).expect("n >= 2");
        let objects = vec![AnyObject::pac(n).expect("valid")];
        let g = Explorer::new(&p, &objects)
            .with_trace(exp.tracer())
            .exploration()
            .limits(limits)
            .run()
            .expect("explorable");
        record_metrics(exp, "dac", n, &g);
        table.row(stats_row("Algorithm 2 (n-DAC)", n, &g));
    }

    for n in 2..=6usize {
        let inputs = distinct_inputs(n);
        let p = KSetViaStrongSa::new(inputs, ObjId(0));
        let objects = vec![AnyObject::strong_sa()];
        let g = Explorer::new(&p, &objects)
            .with_trace(exp.tracer())
            .exploration()
            .limits(limits)
            .run()
            .expect("explorable");
        record_metrics(exp, "sa_race", n, &g);
        table.row(stats_row("2-SA race (nondet branching)", n, &g));
    }

    exp.table(table);

    let mut reduced_table = Table::new(
        "F1b — symmetry reduction on symmetric instances (raw vs orbits)",
        vec![
            "workload",
            "processes",
            "group order",
            "raw configs",
            "orbit configs",
            "reduction",
            "raw ms",
            "reduced ms",
        ],
    );

    for n in 2..=6usize {
        let inputs = mixed_binary_inputs(n);
        let p = DacFromPac::new(inputs, Pid(0), ObjId(0)).expect("n >= 2");
        let objects = vec![AnyObject::pac(n).expect("valid")];
        let ex = Explorer::new(&p, &objects).with_trace(exp.tracer());
        let raw = ex.exploration().limits(limits).run().expect("explorable");
        let reduced = ex
            .exploration()
            .limits(limits)
            .symmetric()
            .run()
            .expect("explorable");
        let group_order: usize = (1..n).product(); // |S_{n-1}|
        reduced_table.row(vec![
            "Algorithm 2 (n-DAC)".into(),
            n.to_string(),
            group_order.to_string(),
            raw.configs.len().to_string(),
            reduced.configs.len().to_string(),
            format!(
                "{:.2}x",
                raw.configs.len() as f64 / reduced.configs.len() as f64
            ),
            format!("{:.1}", raw.stats.elapsed.as_secs_f64() * 1e3),
            format!("{:.1}", reduced.stats.elapsed.as_secs_f64() * 1e3),
        ]);
    }

    exp.table(reduced_table);
}
