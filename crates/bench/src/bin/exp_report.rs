//! **exp_report** — aggregates the `reports/<exp_id>.json` artifacts.
//!
//! Every harnessed experiment binary (see `lbsa_bench::harness`) writes a
//! schema-tagged JSON artifact; this binary turns those artifacts back
//! into the markdown tables of `EXPERIMENTS.md` and checks them:
//!
//! * `exp_report` — validate every artifact in `reports/` and print its
//!   tables (markdown, identical to what the experiment binary printed);
//! * `exp_report --validate FILE` — validate one artifact, exit non-zero
//!   if it does not conform to `lbsa-report/v1` or `/v2`;
//! * `exp_report --validate-trace FILE` — check a `.trace.jsonl` span
//!   trace: every line must parse as a JSON object carrying a string
//!   `"event"` field and numeric `"seq"`/`"t_us"` fields;
//! * `exp_report --metrics` — print every numeric metric of every
//!   artifact in `reports/` as flat `<id> <key> <value>` lines (v2
//!   artifacts embed a `metrics` object; v1 artifacts are skipped);
//! * `exp_report --metrics --against DIR` — same, but diff against the
//!   artifacts in `DIR`: shows both values and the ratio for metrics
//!   present on both sides;
//! * `exp_report --diff EXPERIMENTS.md` — locate each regenerated table in
//!   the committed document (by its header row) and require the committed
//!   rows to be **byte-identical**; exit non-zero on drift.
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_report`.

use lbsa_bench::harness::{table_from_json, validate_report};
use lbsa_hierarchy::report::Table;
use lbsa_support::json::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    validate_report(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(doc)
}

/// The markdown lines of a table from its header row on (title and blank
/// line dropped) — the unit of byte-comparison against `EXPERIMENTS.md`.
fn body_lines(table: &Table) -> Vec<String> {
    table
        .to_string()
        .lines()
        .skip(2)
        .map(String::from)
        .collect()
}

/// Compares one regenerated table against the committed document.
/// Returns `Some(true)` on a byte-identical match, `Some(false)` on
/// drift, `None` when the table's header row does not appear (committed
/// docs legitimately summarize some tables by hand).
fn diff_table(table: &Table, committed: &[&str]) -> Option<bool> {
    let body = body_lines(table);
    let header = body.first()?;
    let at = committed.iter().position(|line| line == header)?;
    let window = committed.get(at..at + body.len())?;
    Some(window.iter().zip(&body).all(|(a, b)| a == b))
}

/// Checks one `.trace.jsonl` file: every line must parse as a JSON object
/// with a string `"event"` and numeric `"seq"` / `"t_us"`. Returns the
/// event count on success, the first offending line on failure.
fn validate_trace(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut events = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line)
            .map_err(|e| format!("{}:{}: not JSON: {e}", path.display(), lineno + 1))?;
        if doc.as_obj().is_none() {
            return Err(format!("{}:{}: not an object", path.display(), lineno + 1));
        }
        if doc.get("event").and_then(Json::as_str).is_none() {
            return Err(format!(
                "{}:{}: missing string \"event\" field",
                path.display(),
                lineno + 1
            ));
        }
        for key in ["seq", "t_us"] {
            if doc.get(key).and_then(Json::as_i64).is_none() {
                return Err(format!(
                    "{}:{}: missing numeric {key:?} field",
                    path.display(),
                    lineno + 1
                ));
            }
        }
        if doc.get("event").and_then(Json::as_str) == Some("progress") {
            validate_progress_event(&doc)
                .map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
        }
        events += 1;
    }
    Ok(events)
}

/// Schema check for the live sampler's `progress` events (emitted by
/// `Exploration::progress_every`, documented in
/// `crates/explorer/src/live.rs`): the cockpit-facing fields must be
/// numeric, and the strategy tag must be a string.
fn validate_progress_event(doc: &Json) -> Result<(), String> {
    if doc.get("strategy").and_then(Json::as_str).is_none() {
        return Err("progress event missing string \"strategy\" field".into());
    }
    for key in [
        "configs",
        "configs_per_sec",
        "ema_configs_per_sec",
        "frontier_depth",
        "eta_us",
        "mem_bytes",
        "elapsed_us",
    ] {
        if doc.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("progress event missing numeric {key:?} field"));
        }
    }
    Ok(())
}

/// Flattens the numeric entries of a report's `metrics` object into
/// sorted `(key, value)` pairs, recursing into nested objects with
/// dotted keys — `"hist": {"level_expand": {"p50_ns": 9}}` becomes
/// `hist.level_expand.p50_ns = 9` — so the v2 histogram payloads diff
/// key-by-key under `--against` instead of being skipped as non-numeric.
fn numeric_metrics(doc: &Json) -> Vec<(String, f64)> {
    fn collect(prefix: &str, value: &Json, out: &mut Vec<(String, f64)>) {
        if let Some(x) = value.as_f64() {
            out.push((prefix.to_string(), x));
        } else if let Some(fields) = value.as_obj() {
            for (k, v) in fields {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                collect(&key, v, out);
            }
        }
    }
    let mut out = Vec::new();
    if let Some(metrics) = doc.get("metrics") {
        collect("", metrics, &mut out);
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn json_artifacts(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// `--metrics` mode: print (and optionally diff) every numeric metric.
fn metrics_mode(reports_dir: &Path, against: Option<&Path>) -> ExitCode {
    let paths = match json_artifacts(reports_dir) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("exp_report: cannot read {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut ok = true;
    for path in &paths {
        let doc = match load(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("invalid: {e}");
                ok = false;
                continue;
            }
        };
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("?");
        println!("# {id} {schema}");
        let base =
            against.map(|dir| dir.join(path.file_name().expect("artifact paths have file names")));
        let baseline = base.as_deref().and_then(|p| load(p).ok());
        let old: std::collections::BTreeMap<String, f64> = baseline
            .as_ref()
            .map(|d| numeric_metrics(d).into_iter().collect())
            .unwrap_or_default();
        for (key, value) in numeric_metrics(&doc) {
            match old.get(&key) {
                Some(prev) if *prev != 0.0 => {
                    println!("{id} {key} {value} (was {prev}, x{:.2})", value / prev)
                }
                Some(prev) => println!("{id} {key} {value} (was {prev})"),
                None => println!("{id} {key} {value}"),
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut reports_dir = PathBuf::from("reports");
    let mut validate_only: Vec<PathBuf> = Vec::new();
    let mut validate_traces: Vec<PathBuf> = Vec::new();
    let mut diff_against: Option<PathBuf> = None;
    let mut metrics = false;
    let mut against: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("exp_report: missing value for {flag}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--reports-dir" => reports_dir = PathBuf::from(value_of("--reports-dir")),
            "--validate" => validate_only.push(PathBuf::from(value_of("--validate"))),
            "--validate-trace" => validate_traces.push(PathBuf::from(value_of("--validate-trace"))),
            "--diff" => diff_against = Some(PathBuf::from(value_of("--diff"))),
            "--metrics" => metrics = true,
            "--against" => against = Some(PathBuf::from(value_of("--against"))),
            other => {
                eprintln!(
                    "exp_report: unknown argument {other:?} \
                     (takes --reports-dir DIR | --validate FILE | --validate-trace FILE \
                     | --metrics [--against DIR] | --diff FILE)"
                );
                return ExitCode::from(2);
            }
        }
    }

    if !validate_only.is_empty() || !validate_traces.is_empty() {
        let mut ok = true;
        for path in &validate_only {
            match load(path) {
                Ok(doc) => {
                    let id = doc.get("id").and_then(Json::as_str).unwrap_or("?");
                    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("?");
                    println!("{}: valid {schema} ({id})", path.display());
                }
                Err(e) => {
                    eprintln!("invalid: {e}");
                    ok = false;
                }
            }
        }
        for path in &validate_traces {
            match validate_trace(path) {
                Ok(events) => println!("{}: well-formed trace ({events} events)", path.display()),
                Err(e) => {
                    eprintln!("invalid trace: {e}");
                    ok = false;
                }
            }
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if metrics {
        return metrics_mode(&reports_dir, against.as_deref());
    }

    let paths = match json_artifacts(&reports_dir) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("exp_report: cannot read {e}");
            return ExitCode::FAILURE;
        }
    };
    if paths.is_empty() {
        eprintln!(
            "exp_report: no artifacts in {} (run the exp_* binaries first)",
            reports_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let committed_text = diff_against.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("exp_report: cannot read {}: {e}", path.display());
            std::process::exit(1);
        })
    });
    let committed: Option<Vec<&str>> = committed_text.as_ref().map(|t| t.lines().collect());

    let mut drift = false;
    for path in &paths {
        let doc = match load(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("invalid: {e}");
                drift = true;
                continue;
            }
        };
        let id = doc.get("id").and_then(Json::as_str).unwrap_or("?");
        let tables = doc.get("tables").and_then(Json::as_arr).unwrap_or(&[]);
        for t in tables {
            let table = table_from_json(t).expect("validated above");
            match &committed {
                None => println!("{table}"),
                Some(lines) => match diff_table(&table, lines) {
                    Some(true) => {
                        println!("{id}: `{}` — rows match byte-for-byte", table.title());
                    }
                    Some(false) => {
                        println!("{id}: `{}` — DRIFT from committed rows", table.title());
                        drift = true;
                    }
                    None => {
                        println!(
                            "{id}: `{}` — not present verbatim (summarized)",
                            table.title()
                        );
                    }
                },
            }
        }
    }
    if drift {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_events_require_the_cockpit_fields() {
        let good = Json::parse(
            r#"{"seq":1,"t_us":50,"event":"progress","strategy":"work-stealing",
                "configs":380,"configs_per_sec":1000.0,"ema_configs_per_sec":900.0,
                "frontier_depth":42,"workers":4,"utilization":0.75,"eta_us":310000,
                "mem_bytes":1048576,"elapsed_us":2600,"final":false}"#,
        )
        .expect("test event");
        assert!(validate_progress_event(&good).is_ok());

        let missing_eta = Json::parse(
            r#"{"event":"progress","strategy":"sampling","configs":1,
                "configs_per_sec":1.0,"ema_configs_per_sec":1.0,"frontier_depth":0,
                "mem_bytes":0,"elapsed_us":1}"#,
        )
        .expect("test event");
        let err = validate_progress_event(&missing_eta).expect_err("eta_us required");
        assert!(err.contains("eta_us"), "err: {err}");

        let missing_strategy = Json::parse(r#"{"event":"progress","configs":1}"#).expect("event");
        let err = validate_progress_event(&missing_strategy).expect_err("strategy required");
        assert!(err.contains("strategy"), "err: {err}");
    }

    #[test]
    fn numeric_metrics_recurse_into_nested_objects_with_dotted_keys() {
        let doc = Json::parse(
            r#"{"schema":"lbsa-report/v2","id":"x","metrics":{
                "configs": 275,
                "hist": {"level_expand": {"count": 12, "p50_ns": 4096},
                         "steal": {"p95_ns": 512}},
                "title": "not numeric"
            }}"#,
        )
        .expect("test doc");
        let flat = numeric_metrics(&doc);
        assert_eq!(
            flat,
            vec![
                ("configs".to_string(), 275.0),
                ("hist.level_expand.count".to_string(), 12.0),
                ("hist.level_expand.p50_ns".to_string(), 4096.0),
                ("hist.steal.p95_ns".to_string(), 512.0),
            ]
        );
    }
}
