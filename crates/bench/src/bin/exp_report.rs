//! **exp_report** — aggregates the `reports/<exp_id>.json` artifacts.
//!
//! Every harnessed experiment binary (see `lbsa_bench::harness`) writes a
//! schema-tagged JSON artifact; this binary turns those artifacts back
//! into the markdown tables of `EXPERIMENTS.md` and checks them:
//!
//! * `exp_report` — validate every artifact in `reports/` and print its
//!   tables (markdown, identical to what the experiment binary printed);
//! * `exp_report --validate FILE` — validate one artifact, exit non-zero
//!   if it does not conform to `lbsa-report/v1`;
//! * `exp_report --diff EXPERIMENTS.md` — locate each regenerated table in
//!   the committed document (by its header row) and require the committed
//!   rows to be **byte-identical**; exit non-zero on drift.
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_report`.

use lbsa_bench::harness::{table_from_json, validate_report};
use lbsa_hierarchy::report::Table;
use lbsa_support::json::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    validate_report(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(doc)
}

/// The markdown lines of a table from its header row on (title and blank
/// line dropped) — the unit of byte-comparison against `EXPERIMENTS.md`.
fn body_lines(table: &Table) -> Vec<String> {
    table
        .to_string()
        .lines()
        .skip(2)
        .map(String::from)
        .collect()
}

/// Compares one regenerated table against the committed document.
/// Returns `Some(true)` on a byte-identical match, `Some(false)` on
/// drift, `None` when the table's header row does not appear (committed
/// docs legitimately summarize some tables by hand).
fn diff_table(table: &Table, committed: &[&str]) -> Option<bool> {
    let body = body_lines(table);
    let header = body.first()?;
    let at = committed.iter().position(|line| line == header)?;
    let window = committed.get(at..at + body.len())?;
    Some(window.iter().zip(&body).all(|(a, b)| a == b))
}

fn main() -> ExitCode {
    let mut reports_dir = PathBuf::from("reports");
    let mut validate_only: Vec<PathBuf> = Vec::new();
    let mut diff_against: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("exp_report: missing value for {flag}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--reports-dir" => reports_dir = PathBuf::from(value_of("--reports-dir")),
            "--validate" => validate_only.push(PathBuf::from(value_of("--validate"))),
            "--diff" => diff_against = Some(PathBuf::from(value_of("--diff"))),
            other => {
                eprintln!(
                    "exp_report: unknown argument {other:?} \
                     (takes --reports-dir DIR | --validate FILE | --diff FILE)"
                );
                return ExitCode::from(2);
            }
        }
    }

    if !validate_only.is_empty() {
        let mut ok = true;
        for path in &validate_only {
            match load(path) {
                Ok(doc) => {
                    let id = doc.get("id").and_then(Json::as_str).unwrap_or("?");
                    println!("{}: valid lbsa-report/v1 ({id})", path.display());
                }
                Err(e) => {
                    eprintln!("invalid: {e}");
                    ok = false;
                }
            }
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&reports_dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect(),
        Err(e) => {
            eprintln!("exp_report: cannot read {}: {e}", reports_dir.display());
            return ExitCode::FAILURE;
        }
    };
    paths.sort();
    if paths.is_empty() {
        eprintln!(
            "exp_report: no artifacts in {} (run the exp_* binaries first)",
            reports_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let committed_text = diff_against.as_ref().map(|path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("exp_report: cannot read {}: {e}", path.display());
            std::process::exit(1);
        })
    });
    let committed: Option<Vec<&str>> = committed_text.as_ref().map(|t| t.lines().collect());

    let mut drift = false;
    for path in &paths {
        let doc = match load(path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("invalid: {e}");
                drift = true;
                continue;
            }
        };
        let id = doc.get("id").and_then(Json::as_str).unwrap_or("?");
        let tables = doc.get("tables").and_then(Json::as_arr).unwrap_or(&[]);
        for t in tables {
            let table = table_from_json(t).expect("validated above");
            match &committed {
                None => println!("{table}"),
                Some(lines) => match diff_table(&table, lines) {
                    Some(true) => {
                        println!("{id}: `{}` — rows match byte-for-byte", table.title());
                    }
                    Some(false) => {
                        println!("{id}: `{}` — DRIFT from committed rows", table.title());
                        drift = true;
                    }
                    None => {
                        println!(
                            "{id}: `{}` — not present verbatim (summarized)",
                            table.title()
                        );
                    }
                },
            }
        }
    }
    if drift {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
