//! **Experiment T4** — Observations 5.1/6.2, Theorems 5.2/5.3: certified
//! consensus numbers.
//!
//! For each object family, certifies the consensus number: the largest `n`
//! at which the canonical protocol passes the exhaustive consensus check,
//! together with the violation exhibited at `n + 1`. The table reproduces
//! the paper's placement claims: `(n,m)-PAC` at level `m` (Theorem 5.3),
//! hence `Oₙ` at level `n` (Observation 6.2), `O'ₙ` at level `n`, the 2-SA
//! object at level 1.
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_t4_hierarchy_level`.

use lbsa_bench::harness::run_experiment;
use lbsa_core::AnyObject;
use lbsa_explorer::Limits;
use lbsa_hierarchy::certify::{certified_consensus_number, Face};
use lbsa_hierarchy::report::Table;

fn main() {
    run_experiment(
        "exp_t4_hierarchy_level",
        "T4 — certified consensus numbers",
        |exp| {
            let limits = Limits::new(2_000_000);
            let cap = 5;
            exp.param("max_configs", limits.max_configs);
            exp.param("cap", cap);
            body(exp, limits, cap);
        },
    );
}

/// Collapse an object display name into a dotted-metric key segment.
fn slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    out.trim_end_matches('_').to_string()
}

fn body(exp: &mut lbsa_bench::harness::Experiment, limits: Limits, cap: usize) {
    let mut table = Table::new(
        "T4 — certified consensus numbers (upper bound exhaustive; n+1 refuted on the canonical protocol)",
        vec!["object", "expected level", "certified level", "configs swept", "refutation at n+1"],
    );

    let cases: Vec<(String, AnyObject, Face, usize)> = vec![
        (
            "1-consensus".into(),
            AnyObject::consensus(1).unwrap(),
            Face::Propose,
            1,
        ),
        (
            "2-consensus".into(),
            AnyObject::consensus(2).unwrap(),
            Face::Propose,
            2,
        ),
        (
            "3-consensus".into(),
            AnyObject::consensus(3).unwrap(),
            Face::Propose,
            3,
        ),
        (
            "4-consensus".into(),
            AnyObject::consensus(4).unwrap(),
            Face::Propose,
            4,
        ),
        (
            "2-SA (strong)".into(),
            AnyObject::strong_sa(),
            Face::Propose,
            1,
        ),
        (
            "(3,1)-SA".into(),
            AnyObject::set_agreement(3, 1).unwrap(),
            Face::Propose,
            3,
        ),
        (
            "(4,2)-SA".into(),
            AnyObject::set_agreement(4, 2).unwrap(),
            Face::Propose,
            1,
        ),
        (
            "(5,2)-PAC".into(),
            AnyObject::combined_pac(5, 2).unwrap(),
            Face::ProposeC,
            2,
        ),
        (
            "(2,3)-PAC".into(),
            AnyObject::combined_pac(2, 3).unwrap(),
            Face::ProposeC,
            3,
        ),
        (
            "O_2 = (3,2)-PAC".into(),
            AnyObject::o_n(2).unwrap(),
            Face::ProposeC,
            2,
        ),
        (
            "O_3 = (4,3)-PAC".into(),
            AnyObject::o_n(3).unwrap(),
            Face::ProposeC,
            3,
        ),
        (
            "O'_2 (K = 2)".into(),
            AnyObject::o_prime_n(2, 2).unwrap(),
            Face::PowerLevel1,
            2,
        ),
        (
            "O'_3 (K = 2)".into(),
            AnyObject::o_prime_n(3, 2).unwrap(),
            Face::PowerLevel1,
            3,
        ),
    ];

    for (name, object, face, expected) in cases {
        match certified_consensus_number(&object, face, cap, limits) {
            Ok(cert) => {
                let key = slug(&name);
                exp.metric(&format!("cert.{key}.level"), cert.level);
                exp.metric(&format!("cert.{key}.configs"), cert.upper.configs);
                let mark = if cert.level == expected {
                    ""
                } else {
                    "  <-- MISMATCH"
                };
                table.row(vec![
                    name,
                    expected.to_string(),
                    format!("{}{mark}", cert.level),
                    cert.upper.configs.to_string(),
                    format!("{}", cert.refutation),
                ]);
            }
            Err(e) => {
                table.row(vec![
                    name,
                    expected.to_string(),
                    format!("ERROR: {e}"),
                    String::new(),
                    String::new(),
                ]);
            }
        }
    }
    exp.table(table);
}
