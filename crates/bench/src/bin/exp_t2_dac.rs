//! **Experiment T2** — Theorem 4.1: Algorithm 2 solves the n-DAC problem.
//!
//! For each `n` and every binary input vector, exhaustively explores every
//! execution of Algorithm 2 over a single n-PAC object and checks the four
//! n-DAC properties (Agreement, Validity, Termination (a)/(b) via solo-run
//! re-exploration, Nontriviality). Per-`n` verdicts (with witnesses, were
//! any violation ever found) land in `reports/exp_t2_dac.json`, and the
//! engine's span trace in `reports/exp_t2_dac.trace.jsonl`.
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_t2_dac`.
//! `--max-n N` caps the largest instance (default 4; CI smoke uses 2).

use lbsa_bench::harness::run_experiment;
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::checker::CheckStats;
use lbsa_explorer::verdict::{verdict_dac, Outcome, Verdict};
use lbsa_explorer::{Explorer, Limits};
use lbsa_hierarchy::report::Table;
use lbsa_protocols::dac::{all_binary_inputs, DacFromPac};

fn main() {
    run_experiment(
        "exp_t2_dac",
        "T2 — Algorithm 2 solves n-DAC (Theorem 4.1), exhaustive",
        |exp| {
            let max_n = exp.arg_usize("max-n", 4);
            let max_configs = 2_000_000usize;
            exp.param("max_n", max_n);
            exp.param("max_configs", max_configs);
            let mut table = Table::new(
                "T2 — Algorithm 2 solves n-DAC (Theorem 4.1), exhaustive",
                vec![
                    "n",
                    "input vectors",
                    "configs (total)",
                    "transitions (total)",
                    "verdict",
                ],
            );
            for n in 2..=max_n {
                let limits = Limits::new(max_configs);
                let solo_bound = 6 * n;
                let mut configs = 0usize;
                let mut transitions = 0usize;
                let mut verdict = "all properties hold".to_string();
                let inputs_list = all_binary_inputs(n);
                let vectors = inputs_list.len();
                let mut summary = None;
                for inputs in inputs_list {
                    let protocol = DacFromPac::new(inputs, Pid(0), ObjId(0)).expect("n >= 2");
                    let objects = vec![AnyObject::pac(n).expect("n >= 1")];
                    let explorer = Explorer::new(&protocol, &objects)
                        .with_trace(exp.tracer())
                        .with_registry(exp.registry());
                    let v = verdict_dac(&explorer, &protocol.instance(), limits, solo_bound);
                    match &v.outcome {
                        Outcome::Holds => {
                            configs += v.stats.configs;
                            transitions += v.stats.transitions;
                        }
                        Outcome::Truncated => {
                            verdict = "TRUNCATED (raise limits)".to_string();
                            summary = Some(v);
                            break;
                        }
                        _ => {
                            verdict = format!("VIOLATED: {v}");
                            summary = Some(v);
                            break;
                        }
                    }
                }
                let summary = summary.unwrap_or(Verdict {
                    outcome: Outcome::Holds,
                    stats: CheckStats {
                        configs,
                        transitions,
                    },
                    witness: None,
                });
                exp.verdict(&format!("n={n}"), &summary);
                exp.metric(&format!("dac.n{n}.vectors"), vectors);
                exp.metric(&format!("dac.n{n}.configs"), configs);
                exp.metric(&format!("dac.n{n}.transitions"), transitions);
                table.row(vec![
                    n.to_string(),
                    vectors.to_string(),
                    configs.to_string(),
                    transitions.to_string(),
                    verdict,
                ]);
            }
            exp.table(table);
            exp.note("Termination here is the n-DAC clause (solo runs), not wait-freedom:");
            exp.note("the execution graphs above contain retry cycles by design.");
        },
    );
}
