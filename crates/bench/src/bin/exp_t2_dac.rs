//! **Experiment T2** — Theorem 4.1: Algorithm 2 solves the n-DAC problem.
//!
//! For each `n` and every binary input vector, exhaustively explores every
//! execution of Algorithm 2 over a single n-PAC object and checks the four
//! n-DAC properties (Agreement, Validity, Termination (a)/(b) via solo-run
//! re-exploration, Nontriviality).
//!
//! Run with `cargo run --release -p lbsa-bench --bin exp_t2_dac`.

use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::checker::{check_dac, Violation};
use lbsa_explorer::{Explorer, Limits};
use lbsa_hierarchy::report::Table;
use lbsa_protocols::dac::{all_binary_inputs, DacFromPac};

fn main() {
    let mut table = Table::new(
        "T2 — Algorithm 2 solves n-DAC (Theorem 4.1), exhaustive",
        vec![
            "n",
            "input vectors",
            "configs (total)",
            "transitions (total)",
            "verdict",
        ],
    );
    for n in [2usize, 3, 4] {
        let limits = Limits::new(2_000_000);
        let solo_bound = 6 * n;
        let mut configs = 0usize;
        let mut transitions = 0usize;
        let mut verdict = "all properties hold".to_string();
        let inputs_list = all_binary_inputs(n);
        let vectors = inputs_list.len();
        'outer: for inputs in inputs_list {
            let protocol = DacFromPac::new(inputs, Pid(0), ObjId(0)).expect("n >= 2");
            let objects = vec![AnyObject::pac(n).expect("n >= 1")];
            let explorer = Explorer::new(&protocol, &objects);
            match check_dac(&explorer, &protocol.instance(), limits, solo_bound) {
                Ok(stats) => {
                    configs += stats.configs;
                    transitions += stats.transitions;
                }
                Err(Violation::Truncated) => {
                    verdict = "TRUNCATED (raise limits)".to_string();
                    break 'outer;
                }
                Err(v) => {
                    verdict = format!("VIOLATED: {v}");
                    break 'outer;
                }
            }
        }
        table.row(vec![
            n.to_string(),
            vectors.to_string(),
            configs.to_string(),
            transitions.to_string(),
            verdict,
        ]);
    }
    println!("{table}");
    println!("Termination here is the n-DAC clause (solo runs), not wait-freedom:");
    println!("the execution graphs above contain retry cycles by design.");
}
