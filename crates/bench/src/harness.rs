//! Shared harness for the `exp_*` experiment binaries.
//!
//! Every experiment binary used to carry its own preamble: build tables,
//! print them, exit. This module deduplicates that into one entry point,
//! [`run_experiment`], which additionally emits a structured JSON artifact
//! `reports/<exp_id>.json` (schema [`REPORT_SCHEMA`]) holding the
//! experiment's parameters, every table row, recorded
//! [`Verdict`]s (including replayable witnesses), the
//! explanatory notes, and the wall-clock time. The `exp_report` binary
//! aggregates those artifacts back into the markdown tables of
//! `EXPERIMENTS.md`.
//!
//! Stdout stays exactly what the binaries always printed — tables and
//! notes, in insertion order — so the rows remain byte-comparable against
//! `EXPERIMENTS.md`; the artifact path is announced on stderr.
//!
//! # Tracing and metrics
//!
//! Unless `--no-report` is given, every harnessed binary also opens a
//! [`JsonlSink`] at `<reports-dir>/<id>.trace.jsonl` and exposes the
//! corresponding [`Tracer`] via [`Experiment::tracer`]. Experiment bodies
//! hand it to the engine (`Explorer::with_trace`) so the artifact captures
//! the full span stream — `explore.begin`, per-level `pargate`/`level`
//! events, `verdict`, `witness.*`, `explore.end`. Scalar measurements
//! recorded via [`Experiment::metric`] land in the report's `metrics`
//! section (schema v2), which `exp_report --metrics` aggregates and diffs.
//!
//! # CLI
//!
//! Every harnessed binary accepts:
//!
//! * `--reports-dir DIR` — where to write the artifact (default
//!   `reports/`);
//! * `--no-report` — skip writing the artifact (and the trace);
//! * `--metrics-out FILE.prom` — additionally render the experiment's
//!   live-metrics [`Registry`] in the Prometheus text exposition format
//!   (bodies opt metrics in via [`Experiment::registry`], e.g.
//!   `Explorer::...` builders' `.registry(exp.registry())`);
//! * `--KEY VALUE` — experiment-specific parameters, read by the body via
//!   [`Experiment::arg`] / [`Experiment::arg_usize`] (e.g. `exp_t2_dac
//!   --max-n 2`).

use lbsa_explorer::Verdict;
use lbsa_hierarchy::report::Table;
use lbsa_support::json::Json;
use lbsa_support::obs::{JsonlSink, Registry, Tracer};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Schema tag written into new report artifacts.
pub const REPORT_SCHEMA: &str = "lbsa-report/v2";

/// The previous schema tag; [`validate_report`] still accepts it (v1
/// artifacts simply predate the `metrics` section).
pub const REPORT_SCHEMA_V1: &str = "lbsa-report/v1";

/// One stdout section, kept in insertion order.
enum Section {
    Table(Table),
    Note(String),
}

/// The in-flight state of one experiment run: what to print, what to
/// record, and the parsed command line.
pub struct Experiment {
    id: String,
    title: String,
    cli: Vec<(String, String)>,
    reports_dir: Option<PathBuf>,
    params: Json,
    sections: Vec<Section>,
    verdicts: Vec<(String, Json)>,
    metrics: Json,
    tracer: Tracer,
    trace_path: Option<PathBuf>,
    registry: Registry,
    metrics_out: Option<PathBuf>,
}

impl Experiment {
    fn from_env(id: &str, title: &str) -> Experiment {
        let mut cli = Vec::new();
        let mut reports_dir = Some(PathBuf::from("reports"));
        let mut metrics_out = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--no-report" {
                reports_dir = None;
            } else if let Some(key) = arg.strip_prefix("--") {
                let Some(value) = args.next() else {
                    eprintln!("{id}: missing value for --{key}");
                    std::process::exit(2);
                };
                if key == "reports-dir" {
                    if reports_dir.is_some() {
                        reports_dir = Some(PathBuf::from(value));
                    }
                } else if key == "metrics-out" {
                    metrics_out = Some(PathBuf::from(value));
                } else {
                    cli.push((key.to_string(), value));
                }
            } else {
                eprintln!("{id}: unexpected argument {arg:?} (flags are --key value)");
                std::process::exit(2);
            }
        }
        // Open the trace artifact up front so the body's tracer clones all
        // share one sink. A sink that cannot be opened downgrades to the
        // disabled tracer — observability must never fail the experiment.
        let mut tracer = Tracer::disabled();
        let mut trace_path = None;
        if let Some(dir) = &reports_dir {
            let path = dir.join(format!("{id}.trace.jsonl"));
            match std::fs::create_dir_all(dir).and_then(|()| JsonlSink::create(&path)) {
                Ok(sink) => {
                    tracer = Tracer::new(sink);
                    trace_path = Some(path);
                }
                Err(e) => eprintln!("{id}: cannot open trace {}: {e}", path.display()),
            }
        }
        Experiment {
            id: id.to_string(),
            title: title.to_string(),
            cli,
            reports_dir,
            params: Json::object(),
            sections: Vec::new(),
            verdicts: Vec::new(),
            metrics: Json::object(),
            tracer,
            trace_path,
            registry: Registry::new(),
            metrics_out,
        }
    }

    /// The raw value of command-line parameter `--name`, if given.
    #[must_use]
    pub fn arg(&self, name: &str) -> Option<&str> {
        self.cli
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of `--name` parsed as `usize`, or `default` when absent.
    /// Exits with a diagnostic when the value does not parse.
    #[must_use]
    pub fn arg_usize(&self, name: &str, default: usize) -> usize {
        match self.arg(name) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("{}: --{name} wants an integer, got {raw:?}", self.id);
                std::process::exit(2);
            }),
        }
    }

    /// Records one experiment parameter into the artifact.
    pub fn param(&mut self, key: &str, value: impl Into<Json>) {
        self.params = std::mem::replace(&mut self.params, Json::Null).set(key, value);
    }

    /// Adds a table: printed to stdout in order, recorded in the artifact.
    pub fn table(&mut self, table: Table) {
        self.sections.push(Section::Table(table));
    }

    /// Adds an explanatory note line: printed after preceding tables,
    /// recorded in the artifact.
    pub fn note(&mut self, line: impl Into<String>) {
        self.sections.push(Section::Note(line.into()));
    }

    /// Records a labelled [`Verdict`] (with its witness, when any) into
    /// the artifact.
    pub fn verdict(&mut self, label: &str, verdict: &Verdict) {
        self.verdicts.push((label.to_string(), verdict.to_json()));
    }

    /// The experiment's tracer, writing to `<reports-dir>/<id>.trace.jsonl`
    /// (disabled under `--no-report`). Hand clones to the engine:
    /// `Explorer::new(&p, &objects).with_trace(exp.tracer())`.
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// The experiment's live-metrics registry. Hand clones to the engine
    /// builders (`Exploration::registry`) so the exhaustive / WS /
    /// sampling engines publish their live counters and gauges here; the
    /// final snapshot lands in the report's `metrics.registry` object,
    /// and `--metrics-out FILE.prom` renders it in the Prometheus text
    /// format.
    #[must_use]
    pub fn registry(&self) -> Registry {
        self.registry.clone()
    }

    /// Records one scalar measurement into the report's `metrics` section.
    /// Dotted keys (`"explore.n5.elapsed_us"`) keep the section flat and
    /// greppable; `exp_report --metrics` aggregates and diffs them.
    pub fn metric(&mut self, key: &str, value: impl Into<Json>) {
        self.metrics = std::mem::replace(&mut self.metrics, Json::Null).set(key, value);
    }

    fn to_json(&self, wall: Duration) -> Json {
        let tables: Vec<Json> = self
            .sections
            .iter()
            .filter_map(|s| match s {
                Section::Table(t) => Some(table_to_json(t)),
                Section::Note(_) => None,
            })
            .collect();
        let notes: Vec<Json> = self
            .sections
            .iter()
            .filter_map(|s| match s {
                Section::Note(n) => Some(Json::from(n.as_str())),
                Section::Table(_) => None,
            })
            .collect();
        let verdicts: Vec<Json> = self
            .verdicts
            .iter()
            .map(|(label, v)| {
                Json::object()
                    .set("label", label.as_str())
                    .set("verdict", v.clone())
            })
            .collect();
        let mut metrics = self.metrics.clone();
        metrics = metrics.set("trace_events", self.tracer.events_emitted());
        if let Some(path) = &self.trace_path {
            metrics = metrics.set("trace_file", path.display().to_string());
        }
        // The final registry snapshot rides into the v2 metrics section as
        // a nested object; `exp_report --metrics` flattens it to dotted
        // `registry.<name>` keys.
        if !self.registry.names().is_empty() {
            metrics = metrics.set("registry", self.registry.snapshot());
        }
        Json::object()
            .set("schema", REPORT_SCHEMA)
            .set("id", self.id.as_str())
            .set("title", self.title.as_str())
            .set("parameters", self.params.clone())
            .set("tables", Json::Arr(tables))
            .set("verdicts", Json::Arr(verdicts))
            .set("notes", Json::Arr(notes))
            .set("metrics", metrics)
            .set("wall_clock_ms", wall.as_secs_f64() * 1e3)
    }
}

/// Runs one experiment: parses the CLI, executes `body`, prints the
/// recorded tables and notes to stdout, and writes
/// `<reports-dir>/<id>.json`.
pub fn run_experiment(id: &str, title: &str, body: impl FnOnce(&mut Experiment)) {
    let mut exp = Experiment::from_env(id, title);
    let start = Instant::now();
    body(&mut exp);
    let wall = start.elapsed();
    for section in &exp.sections {
        match section {
            Section::Table(t) => println!("{t}"),
            Section::Note(n) => println!("{n}"),
        }
    }
    exp.tracer.flush();
    if let Some(path) = &exp.metrics_out {
        match std::fs::write(path, exp.registry.render_prometheus()) {
            Ok(()) => eprintln!("metrics: {}", path.display()),
            Err(e) => eprintln!("{id}: cannot write {}: {e}", path.display()),
        }
    }
    if let Some(path) = &exp.trace_path {
        eprintln!(
            "trace: {} ({} events)",
            path.display(),
            exp.tracer.events_emitted()
        );
    }
    let Some(dir) = exp.reports_dir.clone() else {
        return;
    };
    let doc = exp.to_json(wall);
    debug_assert!(validate_report(&doc).is_ok());
    let path = dir.join(format!("{id}.json"));
    let write = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, doc.pretty()));
    match write {
        Ok(()) => eprintln!("report: {}", path.display()),
        Err(e) => {
            eprintln!("{id}: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Serializes a [`Table`] for the artifact.
#[must_use]
pub fn table_to_json(table: &Table) -> Json {
    Json::object()
        .set("title", table.title())
        .set(
            "headers",
            Json::Arr(
                table
                    .headers()
                    .iter()
                    .map(|h| Json::from(h.as_str()))
                    .collect(),
            ),
        )
        .set(
            "rows",
            Json::Arr(
                table
                    .rows()
                    .iter()
                    .map(|row| {
                        Json::Arr(row.iter().map(|cell| Json::from(cell.as_str())).collect())
                    })
                    .collect(),
            ),
        )
}

/// Rebuilds a [`Table`] from its artifact form.
///
/// # Errors
///
/// Returns a description of the first shape mismatch.
pub fn table_from_json(doc: &Json) -> Result<Table, String> {
    let title = doc
        .get("title")
        .and_then(Json::as_str)
        .ok_or("table: missing string `title`")?;
    let headers: Vec<&str> = doc
        .get("headers")
        .and_then(Json::as_arr)
        .ok_or("table: missing array `headers`")?
        .iter()
        .map(|h| h.as_str().ok_or("table: non-string header"))
        .collect::<Result<_, _>>()?;
    let mut table = Table::new(title, headers);
    for row in doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("table: missing array `rows`")?
    {
        let cells: Vec<String> = row
            .as_arr()
            .ok_or("table: non-array row")?
            .iter()
            .map(|c| c.as_str().map(String::from).ok_or("table: non-string cell"))
            .collect::<Result<_, _>>()?;
        table.row(cells);
    }
    Ok(table)
}

/// Validates a report artifact against the `lbsa-report/v2` schema (or the
/// legacy `v1`, which differs only in lacking the required `metrics`
/// object).
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let field = |key: &str| doc.get(key).ok_or(format!("missing field `{key}`"));
    let v2 = match field("schema")?.as_str() {
        Some(REPORT_SCHEMA) => true,
        Some(REPORT_SCHEMA_V1) => false,
        Some(other) => return Err(format!("unknown schema {other:?}")),
        None => return Err("`schema` is not a string".into()),
    };
    match doc.get("metrics") {
        Some(m) if m.as_obj().is_none() => {
            return Err("`metrics` must be an object".into());
        }
        Some(_) => {}
        None if v2 => return Err("v2 report: missing `metrics` object".into()),
        None => {}
    }
    for key in ["id", "title"] {
        let v = field(key)?;
        if v.as_str().is_none_or(str::is_empty) {
            return Err(format!("`{key}` must be a non-empty string"));
        }
    }
    if field("parameters")?.as_obj().is_none() {
        return Err("`parameters` must be an object".into());
    }
    let tables = field("tables")?
        .as_arr()
        .ok_or("`tables` must be an array")?;
    for t in tables {
        table_from_json(t)?;
    }
    let verdicts = field("verdicts")?
        .as_arr()
        .ok_or("`verdicts` must be an array")?;
    for v in verdicts {
        validate_verdict(v)?;
    }
    let notes = field("notes")?.as_arr().ok_or("`notes` must be an array")?;
    if notes.iter().any(|n| n.as_str().is_none()) {
        return Err("`notes` must contain only strings".into());
    }
    if field("wall_clock_ms")?.as_f64().is_none() {
        return Err("`wall_clock_ms` must be a number".into());
    }
    Ok(())
}

/// Validates one labelled verdict entry of a report.
fn validate_verdict(doc: &Json) -> Result<(), String> {
    if doc
        .get("label")
        .and_then(Json::as_str)
        .is_none_or(str::is_empty)
    {
        return Err("verdict: missing non-empty `label`".into());
    }
    let v = doc.get("verdict").ok_or("verdict: missing `verdict`")?;
    match v.get("outcome").and_then(Json::as_str) {
        Some("holds" | "violated" | "truncated" | "error") => {}
        Some("holds-sampled") => {
            let sampled = v
                .get("sampled")
                .ok_or("verdict: holds-sampled needs a `sampled` object")?;
            for key in ["runs", "quiescent"] {
                if sampled.get(key).and_then(Json::as_i64).is_none() {
                    return Err(format!("verdict: `sampled.{key}` must be an integer"));
                }
            }
            if sampled.get("confidence").and_then(Json::as_f64).is_none() {
                return Err("verdict: `sampled.confidence` must be a number".into());
            }
        }
        Some(other) => return Err(format!("verdict: unknown outcome {other:?}")),
        None => return Err("verdict: missing string `outcome`".into()),
    }
    let stats = v.get("stats").ok_or("verdict: missing `stats`")?;
    for key in ["configs", "transitions"] {
        if stats.get(key).and_then(Json::as_i64).is_none() {
            return Err(format!("verdict: `stats.{key}` must be an integer"));
        }
    }
    match v.get("witness") {
        Some(Json::Null) | None => Ok(()),
        Some(w) => {
            if w.get("kind").and_then(Json::as_str).is_none() {
                return Err("witness: missing string `kind`".into());
            }
            for key in ["schedule", "cycle"] {
                let steps = w
                    .get(key)
                    .and_then(Json::as_arr)
                    .ok_or(format!("witness: `{key}` must be an array"))?;
                for s in steps {
                    if s.get("pid").and_then(Json::as_i64).is_none()
                        || s.get("outcome").and_then(Json::as_i64).is_none()
                    {
                        return Err(format!("witness: malformed step in `{key}`"));
                    }
                }
            }
            if w.get("minimized").and_then(Json::as_bool).is_none() {
                return Err("witness: `minimized` must be a boolean".into());
            }
            if w.get("trace").and_then(Json::as_arr).is_none() {
                return Err("witness: `trace` must be an array".into());
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Json {
        let mut t = Table::new("T0 — sample", vec!["n", "verdict"]);
        t.row(vec!["2".into(), "holds".into()]);
        Json::object()
            .set("schema", REPORT_SCHEMA)
            .set("id", "exp_sample")
            .set("title", "sample")
            .set("parameters", Json::object().set("max_n", 2usize))
            .set("tables", Json::Arr(vec![table_to_json(&t)]))
            .set(
                "verdicts",
                Json::Arr(vec![Json::object().set("label", "n=2").set(
                    "verdict",
                    Json::object()
                        .set("outcome", "holds")
                        .set(
                            "stats",
                            Json::object()
                                .set("configs", 70usize)
                                .set("transitions", 84usize),
                        )
                        .set("witness", Json::Null),
                )]),
            )
            .set("notes", Json::Arr(vec![Json::from("a note")]))
            .set(
                "metrics",
                Json::object()
                    .set("trace_events", 12usize)
                    .set("explore.n2.elapsed_us", 1500usize),
            )
            .set("wall_clock_ms", 1.5)
    }

    #[test]
    fn sample_report_validates_and_round_trips() {
        let doc = sample_report();
        validate_report(&doc).unwrap();
        let parsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(parsed, doc);
        validate_report(&parsed).unwrap();
    }

    #[test]
    fn holds_sampled_verdicts_validate() {
        let sampled_verdict = |sampled: Json| {
            sample_report().set(
                "verdicts",
                Json::Arr(vec![Json::object().set("label", "f8").set(
                    "verdict",
                    Json::object()
                        .set("outcome", "holds-sampled")
                        .set(
                            "stats",
                            Json::object()
                                .set("configs", 500usize)
                                .set("transitions", 9000usize),
                        )
                        .set("sampled", sampled),
                )]),
            )
        };
        let good = sampled_verdict(
            Json::object()
                .set("runs", 500usize)
                .set("quiescent", 480usize)
                .set("confidence", 0.994),
        );
        validate_report(&good).unwrap();

        let missing_confidence = sampled_verdict(
            Json::object()
                .set("runs", 500usize)
                .set("quiescent", 480usize),
        );
        assert!(validate_report(&missing_confidence)
            .unwrap_err()
            .contains("confidence"));

        let no_payload = sample_report().set(
            "verdicts",
            Json::Arr(vec![Json::object().set("label", "f8").set(
                "verdict",
                Json::object().set("outcome", "holds-sampled").set(
                    "stats",
                    Json::object()
                        .set("configs", 0usize)
                        .set("transitions", 0usize),
                ),
            )]),
        );
        assert!(validate_report(&no_payload)
            .unwrap_err()
            .contains("sampled"));
    }

    #[test]
    fn tables_round_trip_through_json() {
        let mut t = Table::new("X", vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        let back = table_from_json(&table_to_json(&t)).unwrap();
        assert_eq!(t, back);
        assert_eq!(t.to_string(), back.to_string());
    }

    #[test]
    fn validation_rejects_malformed_reports() {
        let missing = Json::object().set("schema", REPORT_SCHEMA);
        assert!(validate_report(&missing).is_err());

        let bad_schema = sample_report().set("schema", "nope/v9");
        assert!(validate_report(&bad_schema).unwrap_err().contains("schema"));

        let bad_outcome = sample_report().set(
            "verdicts",
            Json::Arr(vec![Json::object().set("label", "x").set(
                "verdict",
                Json::object().set("outcome", "perhaps").set(
                    "stats",
                    Json::object()
                        .set("configs", 0usize)
                        .set("transitions", 0usize),
                ),
            )]),
        );
        assert!(validate_report(&bad_outcome)
            .unwrap_err()
            .contains("outcome"));

        let bad_note = sample_report().set("notes", Json::Arr(vec![Json::from(3i64)]));
        assert!(validate_report(&bad_note).unwrap_err().contains("notes"));
    }

    #[test]
    fn schema_v1_validates_without_metrics_but_v2_requires_them() {
        let mut v1 = Json::object();
        if let Json::Obj(members) = sample_report() {
            for (k, v) in members {
                if k != "metrics" {
                    v1 = v1.set(&k, v);
                }
            }
        }
        let v1 = v1.set("schema", REPORT_SCHEMA_V1);
        validate_report(&v1).expect("v1 without metrics is legal");

        let v2_missing = v1.set("schema", REPORT_SCHEMA);
        assert!(validate_report(&v2_missing)
            .unwrap_err()
            .contains("metrics"));

        let bad_metrics = sample_report().set("metrics", Json::from("not an object"));
        assert!(validate_report(&bad_metrics)
            .unwrap_err()
            .contains("metrics"));
    }
}
