//! # lbsa-bench — benchmarks and experiment binaries
//!
//! This crate holds:
//!
//! * the **experiment report binaries** (`src/bin/exp_*.rs`), one per
//!   table/figure defined in the repository's `EXPERIMENTS.md`. Each prints
//!   the rows it regenerates, in markdown, to stdout;
//! * the **Criterion benchmarks** (`benches/*.rs`) measuring the machinery:
//!   object-spec throughput, exploration scaling, adversary synthesis,
//!   linearizability checking, certification, and the universal
//!   construction.
//!
//! The library itself provides the shared helpers used by both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use lbsa_core::Value;

/// `count` pairwise-distinct proposal values — the adversarial input choice
/// for agreement bounds.
#[must_use]
pub fn distinct_inputs(count: usize) -> Vec<Value> {
    (0..count).map(|i| Value::Int(i as i64)).collect()
}

/// A mixed binary input vector (process 0 gets `1`, everyone else `0`) —
/// the discriminating instance for consensus problems.
#[must_use]
pub fn mixed_binary_inputs(count: usize) -> Vec<Value> {
    let mut v = vec![Value::Int(0); count];
    if let Some(first) = v.first_mut() {
        *first = Value::Int(1);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        assert_eq!(
            distinct_inputs(3),
            vec![Value::Int(0), Value::Int(1), Value::Int(2)]
        );
        assert_eq!(
            mixed_binary_inputs(3),
            vec![Value::Int(1), Value::Int(0), Value::Int(0)]
        );
        assert!(mixed_binary_inputs(0).is_empty());
    }
}
