//! Cross-field invariants of [`lbsa_explorer::ExploreStats`], pinned on the
//! real experiment workloads: the per-level breakdown must reconcile with
//! the aggregate counters, and the phase-time breakdown must stay within
//! the measured wall clock. These are the numbers the observability layer
//! (`metrics.explore` in the report artifacts, `summary()`'s
//! expand-/merge-bound diagnosis) reports to users — a drift between the
//! levels and the totals would silently corrupt every trace downstream.

use lbsa_bench::mixed_binary_inputs;
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::{
    ExploreStats, Explorer, Frontier, Limits, MemorySink, Registry, SampleConfig, Tracer,
};
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_protocols::dac::DacFromPac;
use lbsa_support::json::Json;
use lbsa_support::obs::Event;
use std::time::Duration;

fn assert_invariants(stats: &ExploreStats, what: &str) {
    let level_width: usize = stats.levels.iter().map(|l| l.width).sum();
    assert_eq!(
        level_width, stats.expanded,
        "{what}: sum of level widths must equal expanded configs"
    );
    let level_transitions: usize = stats.levels.iter().map(|l| l.transitions).sum();
    assert_eq!(
        level_transitions, stats.transitions,
        "{what}: sum of level transitions must equal total transitions"
    );
    let parallel_levels = stats.levels.iter().filter(|l| l.parallel).count();
    assert_eq!(
        parallel_levels, stats.parallel_levels,
        "{what}: parallel_levels must count the levels flagged parallel"
    );
    for (i, l) in stats.levels.iter().enumerate() {
        assert_eq!(
            l.level, i,
            "{what}: level indices must be 0..depth in order"
        );
    }
    assert!(
        stats.phases.measured() <= stats.elapsed,
        "{what}: phase breakdown ({:?}) cannot exceed wall clock ({:?})",
        stats.phases.measured(),
        stats.elapsed
    );
}

#[test]
fn dac_exploration_stats_reconcile() {
    for n in [2usize, 3, 4] {
        let p = DacFromPac::new(mixed_binary_inputs(n), Pid(0), ObjId(0)).expect("n >= 2");
        let objects = vec![AnyObject::pac(n).expect("valid")];
        let g = Explorer::new(&p, &objects)
            .exploration()
            .limits(Limits::new(1_000_000))
            .run()
            .expect("explorable");
        assert_invariants(&g.stats, &format!("dac n={n}"));
    }
}

#[test]
fn consensus_race_stats_reconcile() {
    let p = ConsensusViaObject::new(mixed_binary_inputs(4), ObjId(0));
    let objects = vec![AnyObject::consensus(4).expect("valid")];
    let g = Explorer::new(&p, &objects)
        .exploration()
        .run()
        .expect("explorable");
    assert_invariants(&g.stats, "consensus race n=4");
}

#[test]
fn reduced_exploration_stats_reconcile() {
    let p = DacFromPac::new(mixed_binary_inputs(4), Pid(0), ObjId(0)).expect("n >= 2");
    let objects = vec![AnyObject::pac(4).expect("valid")];
    let g = Explorer::new(&p, &objects)
        .exploration()
        .symmetric()
        .run()
        .expect("explorable");
    assert!(g.stats.reduced, "symmetric run must set the reduced flag");
    assert_invariants(&g.stats, "dac n=4 reduced");
}

/// The work-stealing frontier has no levels — its stats reconcile through
/// the aggregate counters instead: every discovered config is either a
/// local pop or a steal, and on a complete run every transition either
/// discovered a new config or hit the dedup index.
#[test]
fn work_stealing_stats_reconcile() {
    let p = DacFromPac::new(mixed_binary_inputs(4), Pid(0), ObjId(0)).expect("n >= 2");
    let objects = vec![AnyObject::pac(4).expect("valid")];
    for threads in [1usize, 2, 4] {
        let g = Explorer::new(&p, &objects)
            .exploration()
            .frontier(Frontier::WorkStealing)
            .threads(threads)
            .run()
            .expect("explorable");
        let what = format!("dac n=4 work-stealing, {threads} threads");
        let stats = &g.stats;
        assert!(
            stats.work_stealing,
            "{what}: work_stealing flag must be set"
        );
        assert!(
            stats.levels.is_empty(),
            "{what}: the barrier-free frontier has no per-level breakdown"
        );
        assert!(g.complete, "{what}: unbounded run must complete");
        assert_eq!(
            stats.expanded,
            g.configs.len(),
            "{what}: complete run expands every config"
        );
        assert_eq!(
            stats.transitions,
            stats.dedup_hits + g.configs.len() - 1,
            "{what}: every transition is a dedup hit or a discovery"
        );
        assert_eq!(
            stats.local_hits + stats.steals,
            g.configs.len() as u64,
            "{what}: every config is popped locally or stolen"
        );
        assert!(
            stats.phases.measured() <= stats.elapsed,
            "{what}: phase breakdown cannot exceed wall clock"
        );
    }
}

/// Work-stealing plus symmetry reduction: the canonicalization counters
/// must account for every transition of a complete reduced run.
#[test]
fn work_stealing_reduced_stats_reconcile() {
    let p = DacFromPac::new(mixed_binary_inputs(4), Pid(0), ObjId(0)).expect("n >= 2");
    let objects = vec![AnyObject::pac(4).expect("valid")];
    let g = Explorer::new(&p, &objects)
        .exploration()
        .frontier(Frontier::WorkStealing)
        .threads(2)
        .symmetric()
        .run()
        .expect("explorable");
    let stats = &g.stats;
    assert!(stats.reduced && stats.work_stealing);
    assert_eq!(
        stats.canon_patches + stats.canon_full,
        stats.transitions as u64,
        "dac n=4 ws+reduced: every successor was canonicalized, by patch or in full"
    );
}

#[test]
fn forced_parallel_stats_reconcile() {
    let p = DacFromPac::new(mixed_binary_inputs(4), Pid(0), ObjId(0)).expect("n >= 2");
    let objects = vec![AnyObject::pac(4).expect("valid")];
    let g = Explorer::new(&p, &objects)
        .exploration()
        .threads(2)
        .force_parallel()
        .run()
        .expect("explorable");
    assert!(
        g.stats.parallel_levels > 0,
        "forced parallel run must record parallel levels"
    );
    assert_invariants(&g.stats, "dac n=4 forced-parallel");
}

/// Shared schema/ordering checks on a run's `progress` event stream: every
/// event carries the numeric fields `exp_report --validate-trace` demands,
/// `configs` and timestamps never go backwards, and the stream ends with
/// exactly one `final` event.
fn assert_progress_invariants(events: &[Event], strategy: &str, what: &str) {
    assert!(!events.is_empty(), "{what}: at least the final event");
    let mut prev_configs = -1i64;
    let mut prev_t = 0u64;
    for e in events {
        assert_eq!(e.name, "progress");
        assert_eq!(
            e.fields.get("strategy").and_then(Json::as_str),
            Some(strategy),
            "{what}: strategy tag"
        );
        let configs = e
            .fields
            .get("configs")
            .and_then(Json::as_i64)
            .unwrap_or_else(|| panic!("{what}: numeric configs"));
        assert!(
            configs >= prev_configs,
            "{what}: configs must be monotone ({prev_configs} -> {configs})"
        );
        prev_configs = configs;
        assert!(
            e.t_us >= prev_t,
            "{what}: event timestamps must not regress"
        );
        prev_t = e.t_us;
        for field in [
            "configs_per_sec",
            "ema_configs_per_sec",
            "frontier_depth",
            "workers",
            "utilization",
            "eta_us",
            "mem_bytes",
            "elapsed_us",
        ] {
            assert!(
                e.fields.get(field).and_then(Json::as_f64).is_some(),
                "{what}: progress events carry numeric {field}"
            );
        }
    }
    let finals = events
        .iter()
        .filter(|e| e.fields.get("final").and_then(Json::as_bool) == Some(true))
        .count();
    assert_eq!(finals, 1, "{what}: exactly one final event");
    assert_eq!(
        events
            .last()
            .and_then(|e| e.fields.get("final").and_then(Json::as_bool)),
        Some(true),
        "{what}: the final event closes the stream"
    );
}

/// The acceptance workload of the live-observability layer: a 4-thread
/// work-stealing T2 (DAC) run streaming progress at a short cadence. The
/// events must be schema-valid, monotone, and reconcile against the final
/// [`ExploreStats`]; the run is long enough (n = 6 in a debug build) that
/// several periodic ticks land before the final event.
#[test]
fn work_stealing_progress_events_reconcile_with_final_stats() {
    let p = DacFromPac::new(mixed_binary_inputs(6), Pid(0), ObjId(0)).expect("n >= 2");
    let objects = vec![AnyObject::pac(6).expect("valid")];
    let sink = MemorySink::new();
    let registry = Registry::new();
    let period = Duration::from_millis(1);
    let g = Explorer::new(&p, &objects)
        .exploration()
        .frontier(Frontier::WorkStealing)
        .threads(4)
        .registry(registry.clone())
        .progress_every(period)
        .trace(Tracer::new(sink.clone()))
        .run()
        .expect("explorable");
    let events: Vec<Event> = sink
        .events()
        .into_iter()
        .filter(|e| e.name == "progress")
        .collect();
    assert_progress_invariants(&events, "work-stealing", "dac n=6 ws");
    if g.stats.elapsed >= period * 10 {
        assert!(
            events.len() >= 5,
            "a {:?} run on a {period:?} cadence must tick repeatedly, got {}",
            g.stats.elapsed,
            events.len()
        );
    }
    let last = events.last().expect("nonempty");
    assert_eq!(
        last.fields.get("configs").and_then(Json::as_i64),
        i64::try_from(g.stats.expanded).ok(),
        "the final progress event carries the run's expansion total"
    );
    assert_eq!(
        last.fields.get("frontier_depth").and_then(Json::as_i64),
        Some(0),
        "the frontier is drained at the end"
    );
    assert_eq!(last.fields.get("eta_us").and_then(Json::as_i64), Some(0));
    // The registry outlives the run: the snapshot agrees with the stats.
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.get("explore.configs").and_then(Json::as_i64),
        i64::try_from(g.stats.expanded).ok()
    );
    assert_eq!(
        snapshot.get("explore.transitions").and_then(Json::as_i64),
        i64::try_from(g.stats.transitions).ok()
    );
    assert_eq!(
        snapshot.get("mem.interner_bytes").and_then(Json::as_i64),
        i64::try_from(g.stats.interner_bytes).ok()
    );
    assert!(
        snapshot
            .get("mem.graph_bytes")
            .and_then(Json::as_i64)
            .is_some_and(|b| b > 0),
        "the graph gauge is set after a successful run"
    );
}

/// Level-synchronous runs stream the same schema with the `level-sync`
/// strategy tag, and the live counters end exactly at the stats totals.
#[test]
fn level_sync_progress_events_reconcile_with_final_stats() {
    let p = DacFromPac::new(mixed_binary_inputs(5), Pid(0), ObjId(0)).expect("n >= 2");
    let objects = vec![AnyObject::pac(5).expect("valid")];
    let sink = MemorySink::new();
    let registry = Registry::new();
    let g = Explorer::new(&p, &objects)
        .exploration()
        .threads(2)
        .registry(registry.clone())
        .progress_every(Duration::from_millis(1))
        .trace(Tracer::new(sink.clone()))
        .run()
        .expect("explorable");
    let events: Vec<Event> = sink
        .events()
        .into_iter()
        .filter(|e| e.name == "progress")
        .collect();
    assert_progress_invariants(&events, "level-sync", "dac n=5 level-sync");
    assert_eq!(
        registry
            .snapshot()
            .get("explore.configs")
            .and_then(Json::as_i64),
        i64::try_from(g.stats.expanded).ok()
    );
}

/// The sampling strategy streams progress through the same builder knob:
/// `sample.runs` drives the `configs` field and the budget gauge feeds a
/// budget-based ETA.
#[test]
fn sampling_progress_events_reconcile_with_the_report() {
    let inputs = mixed_binary_inputs(3);
    let p = ConsensusViaObject::new(inputs.clone(), ObjId(0));
    let objects = vec![AnyObject::consensus(3).expect("valid")];
    let sink = MemorySink::new();
    let registry = Registry::new();
    let verdict = Explorer::new(&p, &objects)
        .exploration()
        .sample(SampleConfig {
            runs: 4000,
            threads: 2,
            ..SampleConfig::default()
        })
        .registry(registry.clone())
        .progress_every(Duration::from_millis(1))
        .trace(Tracer::new(sink.clone()))
        .check_consensus(&inputs);
    assert!(
        !verdict.is_violated(),
        "consensus via a consensus object holds: {}",
        verdict.describe()
    );
    let events: Vec<Event> = sink
        .events()
        .into_iter()
        .filter(|e| e.name == "progress")
        .collect();
    assert_progress_invariants(&events, "sampling", "sampled consensus n=3");
    assert_eq!(
        registry
            .snapshot()
            .get("sample.runs")
            .and_then(Json::as_i64),
        Some(4000),
        "every budgeted run is mirrored into the registry"
    );
}
