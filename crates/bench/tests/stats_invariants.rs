//! Cross-field invariants of [`lbsa_explorer::ExploreStats`], pinned on the
//! real experiment workloads: the per-level breakdown must reconcile with
//! the aggregate counters, and the phase-time breakdown must stay within
//! the measured wall clock. These are the numbers the observability layer
//! (`metrics.explore` in the report artifacts, `summary()`'s
//! expand-/merge-bound diagnosis) reports to users — a drift between the
//! levels and the totals would silently corrupt every trace downstream.

use lbsa_bench::mixed_binary_inputs;
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::{ExploreStats, Explorer, Frontier, Limits};
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_protocols::dac::DacFromPac;

fn assert_invariants(stats: &ExploreStats, what: &str) {
    let level_width: usize = stats.levels.iter().map(|l| l.width).sum();
    assert_eq!(
        level_width, stats.expanded,
        "{what}: sum of level widths must equal expanded configs"
    );
    let level_transitions: usize = stats.levels.iter().map(|l| l.transitions).sum();
    assert_eq!(
        level_transitions, stats.transitions,
        "{what}: sum of level transitions must equal total transitions"
    );
    let parallel_levels = stats.levels.iter().filter(|l| l.parallel).count();
    assert_eq!(
        parallel_levels, stats.parallel_levels,
        "{what}: parallel_levels must count the levels flagged parallel"
    );
    for (i, l) in stats.levels.iter().enumerate() {
        assert_eq!(
            l.level, i,
            "{what}: level indices must be 0..depth in order"
        );
    }
    assert!(
        stats.phases.measured() <= stats.elapsed,
        "{what}: phase breakdown ({:?}) cannot exceed wall clock ({:?})",
        stats.phases.measured(),
        stats.elapsed
    );
}

#[test]
fn dac_exploration_stats_reconcile() {
    for n in [2usize, 3, 4] {
        let p = DacFromPac::new(mixed_binary_inputs(n), Pid(0), ObjId(0)).expect("n >= 2");
        let objects = vec![AnyObject::pac(n).expect("valid")];
        let g = Explorer::new(&p, &objects)
            .exploration()
            .limits(Limits::new(1_000_000))
            .run()
            .expect("explorable");
        assert_invariants(&g.stats, &format!("dac n={n}"));
    }
}

#[test]
fn consensus_race_stats_reconcile() {
    let p = ConsensusViaObject::new(mixed_binary_inputs(4), ObjId(0));
    let objects = vec![AnyObject::consensus(4).expect("valid")];
    let g = Explorer::new(&p, &objects)
        .exploration()
        .run()
        .expect("explorable");
    assert_invariants(&g.stats, "consensus race n=4");
}

#[test]
fn reduced_exploration_stats_reconcile() {
    let p = DacFromPac::new(mixed_binary_inputs(4), Pid(0), ObjId(0)).expect("n >= 2");
    let objects = vec![AnyObject::pac(4).expect("valid")];
    let g = Explorer::new(&p, &objects)
        .exploration()
        .symmetric()
        .run()
        .expect("explorable");
    assert!(g.stats.reduced, "symmetric run must set the reduced flag");
    assert_invariants(&g.stats, "dac n=4 reduced");
}

/// The work-stealing frontier has no levels — its stats reconcile through
/// the aggregate counters instead: every discovered config is either a
/// local pop or a steal, and on a complete run every transition either
/// discovered a new config or hit the dedup index.
#[test]
fn work_stealing_stats_reconcile() {
    let p = DacFromPac::new(mixed_binary_inputs(4), Pid(0), ObjId(0)).expect("n >= 2");
    let objects = vec![AnyObject::pac(4).expect("valid")];
    for threads in [1usize, 2, 4] {
        let g = Explorer::new(&p, &objects)
            .exploration()
            .frontier(Frontier::WorkStealing)
            .threads(threads)
            .run()
            .expect("explorable");
        let what = format!("dac n=4 work-stealing, {threads} threads");
        let stats = &g.stats;
        assert!(
            stats.work_stealing,
            "{what}: work_stealing flag must be set"
        );
        assert!(
            stats.levels.is_empty(),
            "{what}: the barrier-free frontier has no per-level breakdown"
        );
        assert!(g.complete, "{what}: unbounded run must complete");
        assert_eq!(
            stats.expanded,
            g.configs.len(),
            "{what}: complete run expands every config"
        );
        assert_eq!(
            stats.transitions,
            stats.dedup_hits + g.configs.len() - 1,
            "{what}: every transition is a dedup hit or a discovery"
        );
        assert_eq!(
            stats.local_hits + stats.steals,
            g.configs.len() as u64,
            "{what}: every config is popped locally or stolen"
        );
        assert!(
            stats.phases.measured() <= stats.elapsed,
            "{what}: phase breakdown cannot exceed wall clock"
        );
    }
}

/// Work-stealing plus symmetry reduction: the canonicalization counters
/// must account for every transition of a complete reduced run.
#[test]
fn work_stealing_reduced_stats_reconcile() {
    let p = DacFromPac::new(mixed_binary_inputs(4), Pid(0), ObjId(0)).expect("n >= 2");
    let objects = vec![AnyObject::pac(4).expect("valid")];
    let g = Explorer::new(&p, &objects)
        .exploration()
        .frontier(Frontier::WorkStealing)
        .threads(2)
        .symmetric()
        .run()
        .expect("explorable");
    let stats = &g.stats;
    assert!(stats.reduced && stats.work_stealing);
    assert_eq!(
        stats.canon_patches + stats.canon_full,
        stats.transitions as u64,
        "dac n=4 ws+reduced: every successor was canonicalized, by patch or in full"
    );
}

#[test]
fn forced_parallel_stats_reconcile() {
    let p = DacFromPac::new(mixed_binary_inputs(4), Pid(0), ObjId(0)).expect("n >= 2");
    let objects = vec![AnyObject::pac(4).expect("valid")];
    let g = Explorer::new(&p, &objects)
        .exploration()
        .threads(2)
        .force_parallel()
        .run()
        .expect("explorable");
    assert!(
        g.stats.parallel_levels > 0,
        "forced parallel run must record parallel levels"
    );
    assert_invariants(&g.stats, "dac n=4 forced-parallel");
}
