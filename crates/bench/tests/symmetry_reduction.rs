//! Symmetry reduction soundness, end to end: for every small protocol
//! instance the reduced (orbit) exploration must reach the **same verdict**
//! as the raw one, and every witness extracted from a reduced graph must
//! de-canonicalize into a schedule that replays — and confirms — on the
//! raw system. The broken protocols here are intentionally wrong, so the
//! witness path (not just the Holds path) is exercised.

use lbsa_core::value::int;
use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
use lbsa_explorer::verdict::{
    verdict_consensus, verdict_consensus_reduced, verdict_dac, verdict_dac_reduced,
    verdict_wait_free, verdict_wait_free_reduced,
};
use lbsa_explorer::{Explorer, Limits};
use lbsa_protocols::dac::{all_binary_inputs, DacFromPac};
use lbsa_runtime::process::{classes_by_input, Protocol, Step, Symmetry};

/// Consensus with a broken adopt rule (a loser decides its own input), made
/// symmetric: processes with equal inputs are interchangeable, and the
/// consensus object's state is pid-free.
#[derive(Debug)]
struct BrokenAdoptConsensus {
    inputs: Vec<Value>,
}

impl Protocol for BrokenAdoptConsensus {
    type LocalState = ();
    fn num_processes(&self) -> usize {
        self.inputs.len()
    }
    fn init(&self, _pid: Pid) {}
    fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
        (ObjId(0), Op::Propose(self.inputs[pid.index()]))
    }
    fn on_response(&self, pid: Pid, _s: &(), resp: Value) -> Step<()> {
        let own = self.inputs[pid.index()];
        if resp == own {
            Step::Decide(resp)
        } else {
            Step::Decide(own)
        }
    }
}

impl Symmetry for BrokenAdoptConsensus {
    fn pid_classes(&self) -> Vec<u32> {
        classes_by_input(&self.inputs)
    }
}

/// A symmetric protocol that never terminates: every process proposes to a
/// 2-SA object forever. Wait-freedom is violated, and the witness is a
/// pumpable cycle that must survive de-canonicalization.
#[derive(Debug)]
struct SymmetricSpinners {
    n: usize,
}

impl Protocol for SymmetricSpinners {
    type LocalState = ();
    fn num_processes(&self) -> usize {
        self.n
    }
    fn init(&self, _pid: Pid) {}
    fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
        (ObjId(0), Op::Propose(int(1)))
    }
    fn on_response(&self, _pid: Pid, _s: &(), _resp: Value) -> Step<()> {
        Step::Continue(())
    }
}

impl Symmetry for SymmetricSpinners {
    fn pid_classes(&self) -> Vec<u32> {
        vec![0; self.n]
    }
}

/// Every n-DAC instance with n ≤ 3, every binary input vector, every choice
/// of distinguished process: the reduced verdict agrees with the raw one,
/// reduced never explores more, and any reduced witness confirms on the
/// raw system.
#[test]
fn dac_reduced_verdicts_agree_with_raw_on_all_small_instances() {
    for n in [2usize, 3] {
        for inputs in all_binary_inputs(n) {
            for d in 0..n {
                let p = DacFromPac::new(inputs.clone(), Pid(d), ObjId(0)).unwrap();
                let objects = vec![AnyObject::pac(n).unwrap()];
                let ex = Explorer::new(&p, &objects);
                let raw = verdict_dac(&ex, &p.instance(), Limits::default(), 10);
                let reduced = verdict_dac_reduced(&ex, &p.instance(), Limits::default(), 10);
                assert_eq!(
                    raw.outcome.tag(),
                    reduced.outcome.tag(),
                    "n={n} inputs={inputs:?} distinguished={d}: verdicts diverge"
                );
                assert!(
                    reduced.stats.configs <= raw.stats.configs,
                    "n={n} inputs={inputs:?} distinguished={d}: reduction grew the graph"
                );
                if let Some(w) = &reduced.witness {
                    w.confirm(&ex).unwrap_or_else(|e| {
                        panic!(
                            "n={n} inputs={inputs:?} distinguished={d}: \
                             de-canonicalized witness fails on the raw system: {e}"
                        )
                    });
                }
            }
        }
    }
}

/// Same sweep for the (intentionally broken) symmetric consensus protocol:
/// most input vectors yield an Agreement violation, so this drives the
/// state-witness de-canonicalization path for every orbit shape with n ≤ 3.
#[test]
fn broken_consensus_reduced_witnesses_confirm_on_the_raw_system() {
    let mut violations = 0usize;
    for n in [2usize, 3] {
        for inputs in all_binary_inputs(n) {
            let valid = inputs.clone();
            let p = BrokenAdoptConsensus { inputs };
            let objects = vec![AnyObject::consensus(n).unwrap()];
            let ex = Explorer::new(&p, &objects);
            let raw = verdict_consensus(&ex, &valid, Limits::default());
            let reduced = verdict_consensus_reduced(&ex, &valid, Limits::default());
            assert_eq!(
                raw.outcome.tag(),
                reduced.outcome.tag(),
                "n={n} inputs={valid:?}: verdicts diverge"
            );
            if let Some(w) = &reduced.witness {
                violations += 1;
                w.confirm(&ex)
                    .unwrap_or_else(|e| panic!("n={n} inputs={valid:?}: witness fails: {e}"));
            }
        }
    }
    assert!(
        violations > 0,
        "the broken protocol never violated — dead test"
    );
}

/// Cycle pumping: the reduced wait-freedom witness on an all-symmetric
/// spinner is a *real* cycle after de-canonicalization, and it confirms on
/// the raw system even though the quotient cycle only closed up to orbit.
#[test]
fn reduced_nontermination_witnesses_pump_to_real_cycles() {
    for n in [2usize, 3] {
        let p = SymmetricSpinners { n };
        let objects = vec![AnyObject::strong_sa()];
        let ex = Explorer::new(&p, &objects);
        let raw = verdict_wait_free(&ex, Limits::default());
        let reduced = verdict_wait_free_reduced(&ex, Limits::default());
        assert_eq!(raw.outcome.tag(), reduced.outcome.tag(), "n={n}");
        let w = reduced.witness.expect("spinners violate wait-freedom");
        w.confirm(&ex)
            .unwrap_or_else(|e| panic!("n={n}: pumped cycle fails on the raw system: {e}"));
    }
}

/// Reduction composes with the parallel engine: with the adaptive gate
/// bypassed (this box may have a single core), the symmetric exploration is
/// byte-identical at every worker thread count.
#[test]
fn reduced_graphs_are_thread_count_independent() {
    let p = DacFromPac::new(vec![int(1), int(0), int(0), int(0)], Pid(0), ObjId(0)).unwrap();
    let objects = vec![AnyObject::pac(4).unwrap()];
    let ex = Explorer::new(&p, &objects);
    let sequential = ex.exploration().threads(1).symmetric().run().unwrap();
    assert!(sequential.complete);
    for threads in [2usize, 8] {
        let parallel = ex
            .exploration()
            .threads(threads)
            .force_parallel()
            .symmetric()
            .run()
            .unwrap();
        assert!(
            sequential.same_structure(&parallel),
            "reduced graph differs at {threads} threads"
        );
    }
}
