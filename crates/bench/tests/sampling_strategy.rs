//! End-to-end contract of the unified Strategy API: sampling must agree
//! with exhaustive checking wherever both apply, its verdicts must be
//! thread-count independent, and its violations must come back as real,
//! `confirm()`-passing witnesses.

use lbsa_core::value::int;
use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
use lbsa_explorer::checker::Violation;
use lbsa_explorer::verdict::Outcome;
use lbsa_explorer::{Explorer, SampleConfig};
use lbsa_protocols::commit_adopt::CommitAdopt;
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_runtime::process::{Protocol, Step};

/// Consensus with a broken adopt rule (a loser decides its own input):
/// the standard injected-bug protocol for violation-path tests.
#[derive(Debug)]
struct BrokenAdoptConsensus {
    inputs: Vec<Value>,
}

impl Protocol for BrokenAdoptConsensus {
    type LocalState = ();
    fn num_processes(&self) -> usize {
        self.inputs.len()
    }
    fn init(&self, _pid: Pid) {}
    fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
        (ObjId(0), Op::Propose(self.inputs[pid.index()]))
    }
    fn on_response(&self, pid: Pid, _s: &(), resp: Value) -> Step<()> {
        let own = self.inputs[pid.index()];
        if resp == own {
            Step::Decide(resp)
        } else {
            Step::Decide(own)
        }
    }
}

fn sample_config(runs: u64, seed0: u64, threads: usize) -> SampleConfig {
    SampleConfig {
        runs,
        seed0,
        max_steps: 10_000,
        threads,
        ..SampleConfig::default()
    }
}

/// Where exhaustive checking proves `Holds` (n <= 3), sampling must never
/// report `Violated` — at any seed base and any thread count.
#[test]
fn sampling_never_contradicts_an_exhaustive_holds() {
    // Instance 1: correct consensus via a 3-consensus object.
    let inputs = vec![int(0), int(1), int(2)];
    let consensus = ConsensusViaObject::new(inputs.clone(), ObjId(0));
    let consensus_objs = vec![AnyObject::consensus(3).expect("valid")];

    // Instance 2: consensus via level 1 of the power object O'_3 — one
    // shot, so exhaustively `Holds`.
    let power_inputs = vec![int(0), int(1), int(0)];
    let power = ConsensusViaObject::via_power_level_1(power_inputs.clone(), ObjId(0));
    let power_objs = vec![AnyObject::o_prime_n(3, 2).expect("valid")];

    let exhaustive = Explorer::new(&consensus, &consensus_objs)
        .exploration()
        .check_consensus(&inputs);
    assert!(exhaustive.holds(), "precondition: {exhaustive}");
    let exhaustive_power = Explorer::new(&power, &power_objs)
        .exploration()
        .check_consensus(&power_inputs);
    assert!(exhaustive_power.holds(), "precondition: {exhaustive_power}");

    for seed0 in [0u64, 17, 1 << 40] {
        for threads in [1usize, 4] {
            let v = Explorer::new(&consensus, &consensus_objs)
                .exploration()
                .sample(sample_config(300, seed0, threads))
                .check_consensus(&inputs);
            assert!(
                matches!(v.outcome, Outcome::HoldsSampled { runs: 300, .. }),
                "consensus, seed0={seed0}, threads={threads}: {v}"
            );
            let v = Explorer::new(&power, &power_objs)
                .exploration()
                .sample(sample_config(300, seed0, threads))
                .check_consensus(&power_inputs);
            assert!(
                matches!(v.outcome, Outcome::HoldsSampled { runs: 300, .. }),
                "power, seed0={seed0}, threads={threads}: {v}"
            );
        }
    }
}

/// Commit-adopt at n = 2, checked as 2-set agreement (its outputs take at
/// most two distinct encoded values): exhaustive `Holds` at k = 2 must
/// never be contradicted by sampling.
#[test]
fn sampling_never_contradicts_exhaustive_k_set_holds() {
    let inputs = vec![int(0), int(1)];
    let p = CommitAdopt::new(inputs.clone()).expect("valid");
    let objects = p.objects();
    // Every encoded graded output: (commit|adopt) x (0|1).
    let encodable = vec![int(0), int(1), int(2), int(3)];

    let exhaustive = Explorer::new(&p, &objects)
        .exploration()
        .check_k_set_agreement(2, &encodable);
    assert!(exhaustive.holds(), "precondition: {exhaustive}");

    for seed0 in [0u64, 99] {
        let v = Explorer::new(&p, &objects)
            .exploration()
            .sample(sample_config(400, seed0, 2))
            .check_k_set_agreement(2, &encodable);
        assert!(
            matches!(v.outcome, Outcome::HoldsSampled { runs: 400, .. }),
            "seed0={seed0}: {v}"
        );
    }
}

/// A sampled violation must be bit-identical across thread counts: same
/// outcome, same reproducing seed, same witness.
#[test]
fn sampled_violations_are_thread_count_independent() {
    let p = BrokenAdoptConsensus {
        inputs: vec![int(0), int(1), int(2)],
    };
    let inputs = p.inputs.clone();
    let objects = vec![AnyObject::consensus(3).expect("valid")];

    let baseline = Explorer::new(&p, &objects)
        .exploration()
        .sample(sample_config(400, 7, 1))
        .check_consensus(&inputs);
    let Outcome::Violated(Violation::Sampled(violation)) = &baseline.outcome else {
        panic!("expected a sampled violation, got {baseline}");
    };
    let baseline_seed = violation.seed();
    assert!(baseline.witness.is_some(), "violation carries a witness");

    for threads in [2usize, 4, 8] {
        let v = Explorer::new(&p, &objects)
            .exploration()
            .sample(sample_config(400, 7, threads))
            .check_consensus(&inputs);
        assert_eq!(v, baseline, "threads={threads} diverged from threads=1");
        let Outcome::Violated(Violation::Sampled(violation)) = &v.outcome else {
            panic!("expected a sampled violation, got {v}");
        };
        assert_eq!(violation.seed(), baseline_seed);
    }
}

/// A sampled violation seed must replay deterministically into a
/// delta-minimized, `confirm()`-passing witness, exactly as exhaustive
/// violations do.
#[test]
fn sampled_violations_yield_confirming_witnesses() {
    let p = BrokenAdoptConsensus {
        inputs: vec![int(0), int(1), int(2)],
    };
    let inputs = p.inputs.clone();
    let objects = vec![AnyObject::consensus(3).expect("valid")];
    let ex = Explorer::new(&p, &objects);

    let verdict = ex
        .exploration()
        .sample(sample_config(200, 0, 1))
        .check_consensus(&inputs);
    assert!(verdict.is_violated(), "expected a violation: {verdict}");
    let witness = verdict.witness.as_ref().expect("witness extracted");
    assert!(witness.minimized);

    witness.confirm(&ex).expect("witness must confirm");
    let (end, trace) = witness.replay(&ex).expect("replayable");
    assert!(end.distinct_decisions().len() > 1);
    assert_eq!(trace.len(), witness.schedule.len());

    // Re-sampling the same configuration reproduces the identical verdict,
    // witness included.
    let again = ex
        .exploration()
        .sample(sample_config(200, 0, 1))
        .check_consensus(&inputs);
    assert_eq!(again, verdict);
}
