//! End-to-end demo of the verdict/witness layer on an intentionally buggy
//! protocol, plus the round-trip test for the `reports/*.json` schema.
//!
//! The protocol is consensus with a **broken adopt rule**: every process
//! proposes to a real consensus object, but a loser ignores the winner's
//! value and decides its own input anyway. The checker must return
//! [`Outcome::Violated`] with a witness whose deterministic replay
//! reproduces the agreement violation, and whose minimized schedule is no
//! longer than the original counterexample path.

use lbsa_bench::harness::{table_to_json, validate_report, REPORT_SCHEMA};
use lbsa_core::value::int;
use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
use lbsa_explorer::checker::Violation;
use lbsa_explorer::verdict::{verdict_consensus, Outcome, WitnessKind};
use lbsa_explorer::{Explorer, Limits};
use lbsa_hierarchy::report::Table;
use lbsa_runtime::process::{Protocol, Step};
use lbsa_support::json::Json;

/// Consensus with a broken adopt rule: propose to a consensus object, then
/// decide own input even after losing (the adopt step is the bug).
#[derive(Debug)]
struct BrokenAdoptConsensus {
    inputs: Vec<Value>,
}

impl Protocol for BrokenAdoptConsensus {
    type LocalState = ();
    fn num_processes(&self) -> usize {
        self.inputs.len()
    }
    fn init(&self, _pid: Pid) {}
    fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
        (ObjId(0), Op::Propose(self.inputs[pid.index()]))
    }
    fn on_response(&self, pid: Pid, _s: &(), resp: Value) -> Step<()> {
        let own = self.inputs[pid.index()];
        if resp == own {
            Step::Decide(resp)
        } else {
            // BUG: a loser must adopt the winner's value; deciding its own
            // input violates Agreement.
            Step::Decide(own)
        }
    }
}

fn setup() -> (BrokenAdoptConsensus, Vec<AnyObject>) {
    let p = BrokenAdoptConsensus {
        inputs: vec![int(0), int(1), int(2)],
    };
    let objects = vec![AnyObject::consensus(3).expect("valid")];
    (p, objects)
}

#[test]
fn broken_adopt_rule_yields_replayable_minimized_witness() {
    let (p, objects) = setup();
    let inputs = p.inputs.clone();
    let ex = Explorer::new(&p, &objects);
    let verdict = verdict_consensus(&ex, &inputs, Limits::default());

    assert!(
        matches!(
            &verdict.outcome,
            Outcome::Violated(Violation::Agreement { .. })
        ),
        "expected an agreement violation, got: {verdict}"
    );
    let witness = verdict.witness.as_ref().expect("witness extracted");
    assert_eq!(witness.kind, WitnessKind::Agreement { k: 1 });
    assert!(witness.minimized);

    // The minimized schedule is no longer than the BFS-shortest path to
    // the violating configuration (here both are the 4-step minimum: the
    // winner's propose+decide, a loser's propose+buggy decide).
    let graph = ex.exploration().run().expect("explorable");
    let violating = graph
        .configs
        .iter()
        .position(|c| c.distinct_decisions().len() > 1)
        .expect("violation is reachable");
    let shortest = graph.path_to(violating).expect("reachable").len();
    assert!(
        witness.schedule.len() <= shortest,
        "minimized witness ({}) longer than the original path ({shortest})",
        witness.schedule.len()
    );

    // Deterministic replay reproduces the violation...
    witness.confirm(&ex).expect("witness must confirm");
    let (end, trace) = witness.replay(&ex).expect("replayable");
    assert!(end.distinct_decisions().len() > 1);
    assert_eq!(trace.len(), witness.schedule.len());

    // ...and is reproducible: two replays agree step for step.
    let (end2, trace2) = witness.replay(&ex).expect("replayable");
    assert_eq!(end, end2);
    assert_eq!(trace, trace2);
}

#[test]
fn witness_survives_the_report_schema_round_trip() {
    let (p, objects) = setup();
    let inputs = p.inputs.clone();
    let ex = Explorer::new(&p, &objects);
    let verdict = verdict_consensus(&ex, &inputs, Limits::default());
    assert!(verdict.is_violated());

    // Assemble a full lbsa-report/v2 envelope, exactly the shape the
    // harness writes to reports/<exp_id>.json.
    let mut table = Table::new("demo — broken adopt rule", vec!["n", "verdict"]);
    table.row(vec!["3".into(), verdict.describe()]);
    let report = Json::object()
        .set("schema", REPORT_SCHEMA)
        .set("id", "exp_demo_broken_adopt")
        .set("title", "injected-bug demo")
        .set("parameters", Json::object().set("n", 3usize))
        .set("tables", Json::Arr(vec![table_to_json(&table)]))
        .set(
            "verdicts",
            Json::Arr(vec![Json::object()
                .set("label", "broken-adopt")
                .set("verdict", verdict.to_json())]),
        )
        .set("notes", Json::Arr(vec![]))
        .set("metrics", Json::object().set("trace_events", 0usize))
        .set("wall_clock_ms", 0.25);

    validate_report(&report).expect("schema-valid");
    let parsed = Json::parse(&report.pretty()).expect("parses back");
    assert_eq!(parsed, report, "pretty-print/parse round trip is lossless");
    validate_report(&parsed).expect("still schema-valid after round trip");

    // The witness schedule survives serialization intact.
    let witness = verdict.witness.expect("witness");
    let steps = parsed
        .get("verdicts")
        .and_then(Json::as_arr)
        .and_then(|vs| vs[0].get("verdict"))
        .and_then(|v| v.get("witness"))
        .and_then(|w| w.get("schedule"))
        .and_then(Json::as_arr)
        .expect("schedule present");
    assert_eq!(steps.len(), witness.schedule.len());
    for (json, step) in steps.iter().zip(&witness.schedule) {
        assert_eq!(
            json.get("pid").and_then(Json::as_i64),
            Some(step.pid.index() as i64)
        );
        assert_eq!(
            json.get("outcome").and_then(Json::as_i64),
            Some(step.outcome as i64)
        );
    }
}
