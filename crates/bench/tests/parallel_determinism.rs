//! Parallel determinism: the exploration engine must build **byte-identical**
//! execution graphs for every worker thread count — node indices, edge
//! order, truncation behaviour, everything. These tests pin that contract on
//! the real experiment workloads (Algorithm 2), on an intentionally cyclic
//! protocol, and on randomized small protocols.
//!
//! Every multi-threaded run here bypasses the adaptive parallel gate with
//! [`force_parallel`](lbsa_explorer::Exploration::force_parallel): on a
//! single-core box the gate (correctly) routes every level through the
//! sequential path, which would make these tests vacuous. Forcing the
//! parallel path keeps the classify/stitch merge machinery covered
//! regardless of the host's core count.
//!
//! The work-stealing frontier ([`Frontier::WorkStealing`]) deliberately
//! trades byte-identity for throughput: node indices follow discovery
//! order, which is scheduling-dependent. Its contract is **verdict
//! equality** — the same state space (up to re-indexing), the same stats
//! aggregates, and the same verdict for every checked property, at every
//! thread count. The `ws_*` tests at the bottom pin that contract on the
//! T2 workload (a property that holds) and on a broken consensus protocol
//! (a property that is violated, where the witness must still confirm by
//! deterministic replay even though the graph it was extracted from is
//! indexed differently).

use lbsa_core::value::int;
use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
use lbsa_explorer::checker::Violation;
use lbsa_explorer::verdict::{verdict_dac_graph, verdict_k_set_agreement_graph, Outcome};
use lbsa_explorer::{ExplorationGraph, Explorer, Frontier, Limits};
use lbsa_protocols::dac::DacFromPac;
use lbsa_runtime::process::{Protocol, Step, Symmetry};
use lbsa_support::check::run_cases;
use lbsa_support::rng::SmallRng;

/// Field-by-field graph equality with a readable failure message.
/// (`ExplorationGraph` deliberately does not implement `PartialEq`; graphs
/// from different explorations are not meant to be compared in production
/// code.)
fn assert_same_graph<L: Clone + Eq + std::hash::Hash + std::fmt::Debug>(
    a: &ExplorationGraph<L>,
    b: &ExplorationGraph<L>,
    what: &str,
) {
    assert_eq!(a.configs, b.configs, "{what}: configurations differ");
    assert_eq!(a.edges, b.edges, "{what}: edges differ");
    assert_eq!(a.expanded, b.expanded, "{what}: expanded flags differ");
    assert_eq!(a.complete, b.complete, "{what}: completeness differs");
    assert_eq!(
        a.transitions, b.transitions,
        "{what}: transition counts differ"
    );
}

fn explore_with_threads<P: Protocol>(
    explorer: &Explorer<'_, P>,
    limits: Limits,
    threads: usize,
) -> ExplorationGraph<P::LocalState> {
    let mut e = explorer.exploration().limits(limits).threads(threads);
    if threads > 1 {
        e = e.force_parallel();
    }
    e.run().expect("exploration succeeds")
}

fn mixed_binary_inputs(count: usize) -> Vec<Value> {
    (0..count).map(|i| Value::Int((i % 2) as i64)).collect()
}

#[test]
fn t2_dac_graphs_are_thread_count_independent() {
    for n in [2usize, 3] {
        let p = DacFromPac::new(mixed_binary_inputs(n), Pid(0), ObjId(0)).unwrap();
        let objects = vec![AnyObject::pac(n).unwrap()];
        let explorer = Explorer::new(&p, &objects);
        let sequential = explore_with_threads(&explorer, Limits::default(), 1);
        assert!(sequential.complete);
        for threads in [2usize, 3, 8] {
            let parallel = explore_with_threads(&explorer, Limits::default(), threads);
            assert_same_graph(
                &sequential,
                &parallel,
                &format!("T2 n={n}, {threads} threads"),
            );
        }
    }
}

#[test]
fn t2_dac_truncated_graphs_are_thread_count_independent() {
    let p = DacFromPac::new(mixed_binary_inputs(3), Pid(0), ObjId(0)).unwrap();
    let objects = vec![AnyObject::pac(3).unwrap()];
    let explorer = Explorer::new(&p, &objects);
    for budget in [1usize, 7, 40] {
        let sequential = explore_with_threads(&explorer, Limits::new(budget), 1);
        assert!(!sequential.complete || budget >= 40);
        for threads in [2usize, 4] {
            let parallel = explore_with_threads(&explorer, Limits::new(budget), threads);
            assert_same_graph(
                &sequential,
                &parallel,
                &format!("T2 n=3 truncated to {budget}, {threads} threads"),
            );
        }
    }
}

/// One process proposing to a 2-SA object forever: the graph is a cycle, so
/// the frontier never drains by termination — only by deduplication.
#[derive(Debug)]
struct ForeverProposer;

impl Protocol for ForeverProposer {
    type LocalState = ();

    fn num_processes(&self) -> usize {
        1
    }

    fn init(&self, _pid: Pid) {}

    fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
        (ObjId(0), Op::Propose(Value::Int(1)))
    }

    fn on_response(&self, _pid: Pid, _s: &(), _resp: Value) -> Step<()> {
        Step::Continue(())
    }
}

#[test]
fn cyclic_graphs_are_thread_count_independent() {
    let p = ForeverProposer;
    let objects = vec![AnyObject::strong_sa()];
    let explorer = Explorer::new(&p, &objects);
    let sequential = explore_with_threads(&explorer, Limits::default(), 1);
    assert!(
        sequential.complete,
        "finite state space despite the infinite execution"
    );
    assert!(sequential.has_cycle());
    for threads in [2usize, 5] {
        let parallel = explore_with_threads(&explorer, Limits::default(), threads);
        assert_same_graph(
            &sequential,
            &parallel,
            &format!("cyclic, {threads} threads"),
        );
    }
}

/// What a [`ScriptedProtocol`] process does with the response it got, as a
/// function of its current phase.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum ScriptEntry {
    /// Decide a scripted constant.
    Decide(i64),
    /// Decide whatever the object responded.
    DecideResponse,
    /// Advance to the next phase (wrapping — cycles are intended).
    Continue,
}

/// A randomly generated protocol: each process walks a small cyclic phase
/// script, proposing scripted values and deciding per its script. Pure by
/// construction, so it satisfies the determinism contract the engine
/// relies on, while exercising cycles, asymmetric processes, and (on
/// nondeterministic objects) multi-outcome branching.
#[derive(Debug)]
struct ScriptedProtocol {
    phases: usize,
    /// `script[pid][phase]`.
    script: Vec<Vec<ScriptEntry>>,
    /// `proposal[pid][phase]`.
    proposal: Vec<Vec<i64>>,
}

impl ScriptedProtocol {
    fn random(rng: &mut SmallRng, n: usize, phases: usize) -> Self {
        let script = (0..n)
            .map(|_| {
                (0..phases)
                    .map(|_| match rng.random_range(0..4) {
                        0 => ScriptEntry::Decide(rng.i64_range(0..3)),
                        1 => ScriptEntry::DecideResponse,
                        _ => ScriptEntry::Continue,
                    })
                    .collect()
            })
            .collect();
        let proposal = (0..n)
            .map(|_| (0..phases).map(|_| rng.i64_range(0..3)).collect())
            .collect();
        ScriptedProtocol {
            phases,
            script,
            proposal,
        }
    }
}

impl Protocol for ScriptedProtocol {
    type LocalState = u8;

    fn num_processes(&self) -> usize {
        self.script.len()
    }

    fn init(&self, _pid: Pid) -> u8 {
        0
    }

    fn pending_op(&self, pid: Pid, phase: &u8) -> (ObjId, Op) {
        (
            ObjId(0),
            Op::Propose(Value::Int(self.proposal[pid.index()][*phase as usize])),
        )
    }

    fn on_response(&self, pid: Pid, phase: &u8, resp: Value) -> Step<u8> {
        match &self.script[pid.index()][*phase as usize] {
            ScriptEntry::Decide(v) => Step::Decide(Value::Int(*v)),
            ScriptEntry::DecideResponse => Step::Decide(resp),
            ScriptEntry::Continue => Step::Continue(((*phase as usize + 1) % self.phases) as u8),
        }
    }
}

/// Runs the work-stealing frontier with an explicit worker count.
fn explore_ws<P: Protocol>(
    explorer: &Explorer<'_, P>,
    threads: usize,
) -> ExplorationGraph<P::LocalState> {
    explorer
        .exploration()
        .frontier(Frontier::WorkStealing)
        .threads(threads)
        .run()
        .expect("exploration succeeds")
}

/// The stats aggregates that must agree between the deterministic and the
/// work-stealing engines: everything that describes the state space rather
/// than the schedule that discovered it.
fn assert_same_aggregates<L>(det: &ExplorationGraph<L>, ws: &ExplorationGraph<L>, what: &str) {
    assert_eq!(
        det.configs.len(),
        ws.configs.len(),
        "{what}: config counts differ"
    );
    assert_eq!(
        det.transitions, ws.transitions,
        "{what}: transition counts differ"
    );
    assert_eq!(det.complete, ws.complete, "{what}: completeness differs");
    assert_eq!(
        det.stats.dedup_hits, ws.stats.dedup_hits,
        "{what}: dedup hits differ"
    );
    assert_eq!(
        ws.stats.local_hits + ws.stats.steals,
        ws.configs.len() as u64,
        "{what}: every config is either popped locally or stolen"
    );
}

#[test]
fn ws_dac_verdicts_match_deterministic_across_thread_counts() {
    for n in [2usize, 3, 4] {
        let p = DacFromPac::new(mixed_binary_inputs(n), Pid(0), ObjId(0)).unwrap();
        let objects = vec![AnyObject::pac(n).unwrap()];
        let explorer = Explorer::new(&p, &objects);
        let solo_bound = 6 * n;
        let det = explore_with_threads(&explorer, Limits::default(), 1);
        let det_verdict = verdict_dac_graph(&explorer, &det, &p.instance(), solo_bound);
        assert!(
            matches!(det_verdict.outcome, Outcome::Holds),
            "T2 n={n} must satisfy DAC: {det_verdict}"
        );
        for threads in [1usize, 2, 4, 8] {
            let ws = explore_ws(&explorer, threads);
            assert_same_aggregates(&det, &ws, &format!("T2 n={n}, ws {threads} threads"));
            let ws_verdict = verdict_dac_graph(&explorer, &ws, &p.instance(), solo_bound);
            assert_eq!(
                det_verdict, ws_verdict,
                "T2 n={n}: verdict differs on the work-stealing graph ({threads} threads)"
            );
        }
    }
}

/// Consensus with a broken adopt rule: a loser decides its own input, so
/// Agreement is violated — the work-stealing graph must yield the same
/// violated verdict, and its witness (extracted from a differently-indexed
/// graph) must still confirm by deterministic replay.
#[derive(Debug)]
struct BrokenAdoptConsensus {
    inputs: Vec<Value>,
}

impl Protocol for BrokenAdoptConsensus {
    type LocalState = ();
    fn num_processes(&self) -> usize {
        self.inputs.len()
    }
    fn init(&self, _pid: Pid) {}
    fn pending_op(&self, pid: Pid, _s: &()) -> (ObjId, Op) {
        (ObjId(0), Op::Propose(self.inputs[pid.index()]))
    }
    fn on_response(&self, pid: Pid, _s: &(), resp: Value) -> Step<()> {
        let own = self.inputs[pid.index()];
        if resp == own {
            Step::Decide(resp)
        } else {
            Step::Decide(own)
        }
    }
}

#[test]
fn ws_broken_consensus_verdicts_match_deterministic_across_thread_counts() {
    let inputs = vec![int(0), int(1), int(2)];
    let p = BrokenAdoptConsensus {
        inputs: inputs.clone(),
    };
    let objects = vec![AnyObject::consensus(3).unwrap()];
    let explorer = Explorer::new(&p, &objects);
    let det = explore_with_threads(&explorer, Limits::default(), 1);
    let det_verdict = verdict_k_set_agreement_graph(&explorer, &det, 1, &inputs);
    assert!(
        det_verdict.is_violated(),
        "the broken protocol must violate agreement: {det_verdict}"
    );
    for threads in [1usize, 2, 4, 8] {
        let ws = explore_ws(&explorer, threads);
        assert_same_aggregates(
            &det,
            &ws,
            &format!("broken consensus, ws {threads} threads"),
        );
        let ws_verdict = verdict_k_set_agreement_graph(&explorer, &ws, 1, &inputs);
        // The *kind* of verdict must agree; the specific violating
        // configuration a check reports first is indexing-dependent, so the
        // payload is pinned through witness replay instead.
        assert!(
            matches!(
                ws_verdict.outcome,
                Outcome::Violated(Violation::Agreement { .. })
            ),
            "broken consensus: outcome differs on the work-stealing graph \
             ({threads} threads): {ws_verdict}"
        );
        let witness = ws_verdict.witness.as_ref().expect("witness extracted");
        witness
            .confirm(&explorer)
            .expect("work-stealing witness must confirm by replay");
    }
}

/// Fully symmetric race: every process proposes the same value, so the
/// process-permutation group is all of `S_n` and symmetry reduction
/// collapses the graph hard — the harshest setting for the work-stealing
/// engine's canon-memo + batched-index path.
#[derive(Debug)]
struct SymmetricRace {
    n: usize,
}

impl Protocol for SymmetricRace {
    type LocalState = ();
    fn num_processes(&self) -> usize {
        self.n
    }
    fn init(&self, _pid: Pid) {}
    fn pending_op(&self, _pid: Pid, _s: &()) -> (ObjId, Op) {
        (ObjId(0), Op::Propose(int(7)))
    }
    fn on_response(&self, _pid: Pid, _s: &(), resp: Value) -> Step<()> {
        Step::Decide(resp)
    }
}

impl Symmetry for SymmetricRace {
    fn pid_classes(&self) -> Vec<u32> {
        vec![0; self.n]
    }
}

#[test]
fn ws_symmetric_reduction_matches_deterministic_across_thread_counts() {
    let p = SymmetricRace { n: 4 };
    let objects = vec![AnyObject::consensus(4).unwrap()];
    let explorer = Explorer::new(&p, &objects);
    let inputs = vec![int(7)];
    let det = explorer
        .exploration()
        .symmetric()
        .threads(1)
        .run()
        .expect("deterministic reduced exploration succeeds");
    assert!(det.stats.reduced);
    let det_verdict = verdict_k_set_agreement_graph(&explorer, &det, 1, &inputs);
    assert!(
        matches!(det_verdict.outcome, Outcome::Holds),
        "the symmetric race satisfies consensus: {det_verdict}"
    );
    for threads in [1usize, 2, 4, 8] {
        let ws = explorer
            .exploration()
            .symmetric()
            .threads(threads)
            .frontier(Frontier::WorkStealing)
            .run()
            .expect("work-stealing reduced exploration succeeds");
        assert!(ws.stats.reduced);
        assert_same_aggregates(&det, &ws, &format!("symmetric race, ws {threads} threads"));
        // The canonicalization effort is accounted identically: every
        // transition either patched a cached canonical form or recomputed
        // one in full.
        assert_eq!(
            ws.stats.canon_patches + ws.stats.canon_full,
            ws.stats.transitions as u64,
            "symmetric race ({threads} threads): canon accounting leaks"
        );
        let ws_verdict = verdict_k_set_agreement_graph(&explorer, &ws, 1, &inputs);
        assert_eq!(
            det_verdict, ws_verdict,
            "symmetric race: verdict differs on the work-stealing graph ({threads} threads)"
        );
    }
}

#[test]
fn random_small_protocols_are_thread_count_independent() {
    run_cases("parallel determinism on random protocols", 40, |rng| {
        let n = rng.random_range(1..4);
        let phases = rng.random_range(1..4);
        let p = ScriptedProtocol::random(rng, n, phases);
        let objects = vec![if rng.ratio(1, 2) {
            AnyObject::consensus(n).unwrap()
        } else {
            AnyObject::strong_sa()
        }];
        let explorer = Explorer::new(&p, &objects);
        // Mix complete and truncated explorations.
        let limits = if rng.ratio(1, 3) {
            Limits::new(rng.random_range(1..30))
        } else {
            Limits::default()
        };
        let sequential = explore_with_threads(&explorer, limits, 1);
        let threads = rng.random_range(2..7);
        let parallel = explore_with_threads(&explorer, limits, threads);
        assert_same_graph(
            &sequential,
            &parallel,
            &format!("random protocol n={n} phases={phases} threads={threads}"),
        );
    });
}
