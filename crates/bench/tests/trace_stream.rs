//! Trace-stream contracts under the concurrent engines.
//!
//! The `lbsa_support::obs` unit tests pin the sink mechanics in
//! isolation; these tests drive the real work-stealing engine and check
//! the two properties the trace *consumers* (`obs_analyze`, the `--regress`
//! tracker) lean on:
//!
//! * **total order** — cloned `Tracer`s in concurrent workers share one
//!   sequence counter, so the collected stream carries every sequence
//!   number exactly once: sorting by `seq` is a total order of the run,
//!   whatever the arrival interleaving at the sink was;
//! * **flush-on-`Drop` durability** — a `JsonlSink` trace left to go out
//!   of scope without an explicit `flush()` still lands complete on disk
//!   and passes the same checks as `exp_report --validate-trace`;
//! * **tail-friendliness** — a reader following the file *while the
//!   engine writes it* (the `obs_top --follow` scenario) only ever sees
//!   whole, parseable JSONL lines, because the sink flushes on line
//!   boundaries (every `JSONL_FLUSH_EVERY` events and on every
//!   `progress` event).

use lbsa_bench::mixed_binary_inputs;
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::{Explorer, Frontier, JsonlSink, MemorySink, Tracer};
use lbsa_protocols::dac::DacFromPac;
use lbsa_support::json::Json;

const N: usize = 5;

fn explorer_input() -> (DacFromPac, Vec<AnyObject>) {
    let p = DacFromPac::new(mixed_binary_inputs(N), Pid(0), ObjId(0)).unwrap();
    let objects = vec![AnyObject::pac(N).unwrap()];
    (p, objects)
}

#[test]
fn concurrent_ws_workers_emit_one_totally_ordered_stream() {
    let (p, objects) = explorer_input();
    let explorer = Explorer::new(&p, &objects);
    let sink = MemorySink::new();
    let tracer = Tracer::new(sink.clone());
    let g = explorer
        .exploration()
        .frontier(Frontier::WorkStealing)
        .threads(4)
        .trace(tracer.clone())
        .run()
        .unwrap();
    assert!(g.configs.len() > 100, "workload big enough to interleave");

    let events = sink.events();
    assert_eq!(
        events.len() as u64,
        tracer.events_emitted(),
        "every emitted event reached the sink"
    );
    // The workers each emitted through their own clone of the tracer; the
    // shared counter must have handed out every sequence number exactly
    // once — no duplicates, no gaps. Arrival order at the sink is allowed
    // to interleave; sorting by seq is the total order.
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..events.len() as u64).collect::<Vec<u64>>());

    // The stream really is multi-worker: every spawned worker signs off.
    let workers: std::collections::BTreeSet<i64> = events
        .iter()
        .filter(|e| e.name == "ws.done")
        .filter_map(|e| e.fields.get("worker").and_then(Json::as_i64))
        .collect();
    assert_eq!(workers.len(), 4, "one ws.done per worker: {workers:?}");
}

#[test]
fn jsonl_trace_survives_drop_without_explicit_flush() {
    let path = std::env::temp_dir().join(format!(
        "lbsa-trace-stream-{}-{:?}.trace.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let emitted;
    {
        let (p, objects) = explorer_input();
        let explorer = Explorer::new(&p, &objects);
        let tracer = Tracer::new(JsonlSink::create(&path).expect("temp trace file"));
        let g = explorer
            .exploration()
            .frontier(Frontier::WorkStealing)
            .threads(2)
            .trace(tracer.clone())
            .run()
            .unwrap();
        assert!(g.configs.len() > 100);
        emitted = tracer.events_emitted();
        // No tracer.flush() here: everything the engine buffered must be
        // written by JsonlSink's Drop when the last clone dies with this
        // scope.
    }
    let text = std::fs::read_to_string(&path).expect("trace file exists after drop");
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len() as u64, emitted, "no buffered tail lost on drop");
    // The same per-line checks `exp_report --validate-trace` runs: JSON
    // object, string "event", numeric "seq" and "t_us".
    for (lineno, line) in lines.iter().enumerate() {
        let doc = Json::parse(line)
            .unwrap_or_else(|e| panic!("line {}: not JSON ({e}): {line}", lineno + 1));
        assert!(doc.as_obj().is_some(), "line {}: not an object", lineno + 1);
        assert!(
            doc.get("event").and_then(Json::as_str).is_some(),
            "line {}: missing event name",
            lineno + 1
        );
        for key in ["seq", "t_us"] {
            assert!(
                doc.get(key).and_then(Json::as_i64).is_some(),
                "line {}: missing numeric {key}",
                lineno + 1
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn concurrently_tailed_trace_yields_only_whole_jsonl_lines() {
    let path = std::env::temp_dir().join(format!(
        "lbsa-trace-tail-{}-{:?}.trace.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let tracer = Tracer::new(JsonlSink::create(&path).expect("temp trace file"));

    // Writer: a traced WS run with a fast progress sampler, on its own
    // thread so this test can read the file while it grows.
    let writer_tracer = tracer.clone();
    let writer = std::thread::spawn(move || {
        let (p, objects) = explorer_input();
        let explorer = Explorer::new(&p, &objects);
        explorer
            .exploration()
            .frontier(Frontier::WorkStealing)
            .threads(2)
            .trace(writer_tracer)
            .progress_every(std::time::Duration::from_millis(1))
            .run()
            .unwrap()
            .configs
            .len()
    });

    // Reader: poll the growing file. Every complete line (up to the last
    // newline) must parse — a torn line would mean the sink flushed
    // mid-`writeln!`, which the per-line Mutex + BufWriter forbid.
    let mut tail_checks = 0usize;
    for _ in 0..200 {
        let text = std::fs::read_to_string(&path).expect("trace file readable mid-run");
        if let Some(whole) = text.rfind('\n').map(|at| &text[..at]) {
            for line in whole.lines().filter(|l| !l.trim().is_empty()) {
                let doc = Json::parse(line)
                    .unwrap_or_else(|e| panic!("torn/partial line mid-run ({e}): {line:?}"));
                assert!(
                    doc.get("event").and_then(Json::as_str).is_some(),
                    "mid-run line without event name: {line:?}"
                );
                tail_checks += 1;
            }
        }
        if writer.is_finished() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let configs = writer.join().expect("writer run");
    assert!(configs > 100);
    assert!(
        tail_checks > 0,
        "the tail saw at least one complete line while the run was live"
    );
    tracer.flush();
    // After the run, the same final-state validation as the drop test.
    let text = std::fs::read_to_string(&path).expect("final trace");
    let lines = text.lines().filter(|l| !l.trim().is_empty()).count();
    assert_eq!(lines as u64, tracer.events_emitted());
    assert!(
        text.lines().any(|l| l.contains("\"event\":\"progress\"")),
        "the sampler's progress events landed in the tailed file"
    );
    let _ = std::fs::remove_file(&path);
}
