//! **T2 (bench)** — full n-DAC verification cost: exploring Algorithm 2 and
//! running all four DAC property checks (including solo-run re-exploration).

use lbsa_bench::mixed_binary_inputs;
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::checker::check_dac;
use lbsa_explorer::{Explorer, Limits};
use lbsa_protocols::dac::DacFromPac;
use lbsa_support::bench::{BenchmarkId, Criterion};
use lbsa_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_dac(c: &mut Criterion) {
    let mut group = c.benchmark_group("dac_explore");
    group.sample_size(10);

    for n in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("check_dac", n), &n, |b, &n| {
            let p = DacFromPac::new(mixed_binary_inputs(n), Pid(0), ObjId(0)).unwrap();
            let objects = vec![AnyObject::pac(n).unwrap()];
            b.iter(|| {
                let ex = Explorer::new(&p, &objects);
                let stats = check_dac(&ex, &p.instance(), Limits::default(), 6 * n).unwrap();
                black_box(stats.configs)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_dac);
criterion_main!(benches);
