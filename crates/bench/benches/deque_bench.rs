//! Microbenchmark — the lock-free Chase–Lev deque vs the mutexed
//! `VecDeque` it replaced in the work-stealing frontier.
//!
//! Two workloads, mirroring the engine's actual access patterns:
//!
//! * `local_ops` — the owner hot path: bursts of LIFO pushes and pops,
//!   exactly what every expanded task does with its spawned children. The
//!   old engine paid a lock round-trip per operation even with zero
//!   contention; the Chase–Lev owner pays one uncontended atomic RMW.
//! * `steal_mix` — the same owner loop while two thief threads hammer the
//!   FIFO end, the pattern of a narrow frontier on a loaded host. Here the
//!   mutex additionally convoys: every steal sweep serializes against the
//!   owner's per-op locking.
//!
//! The final summary prints the min-over-min speedups against a
//! core-count-tiered target, the same convention perf_smoke uses for
//! its scaling floors: on a multi-core host the contended workload is
//! where the mutex convoys (preempted lock holders block everyone) and
//! the lock-free deque is expected to clear 3×. On a single core the
//! scheduler serializes the contention away, so the ratio degenerates
//! to raw op cost: pop's mandatory barrier (Attiya et al., "Laws of
//! Order" — every work-stealing pop pays a fence or RMW) against an
//! *uncontended* futex fast path, which honestly tops out near 2–2.5×;
//! the single-core target is therefore ≥ 2×.

use lbsa_support::bench::Criterion;
use lbsa_support::deque;
use lbsa_support::{criterion_group, criterion_main};
use std::collections::VecDeque;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Pushes and pops per measured iteration (LIFO bursts, like task fan-out).
const BURST: u64 = 256;

/// Thief threads hammering the FIFO end in the contended workload.
const THIEVES: usize = 2;

fn owner_burst_lock_free(owner: &deque::Owner<u64>) -> u64 {
    for i in 0..BURST {
        owner.push(i);
    }
    let mut acc = 0u64;
    while let Some(v) = owner.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

fn owner_burst_mutexed(q: &Mutex<VecDeque<u64>>) -> u64 {
    // One lock round-trip per operation — the cost of a Mutex<VecDeque>
    // used as a drop-in concurrent deque. Both variants execute the
    // identical operation sequence (BURST pushes, then pops to empty).
    for i in 0..BURST {
        q.lock().unwrap().push_back(i);
    }
    let mut acc = 0u64;
    while let Some(v) = q.lock().unwrap().pop_back() {
        acc = acc.wrapping_add(v);
    }
    acc
}

fn bench_local_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("deque_local");
    group.sample_size(40);
    group.bench_function("lock_free", |b| {
        let (owner, _stealer) = deque::deque::<u64>();
        b.iter(|| black_box(owner_burst_lock_free(&owner)));
    });
    group.bench_function("mutexed", |b| {
        let q: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
        b.iter(|| black_box(owner_burst_mutexed(&q)));
    });
    group.finish();
}

fn bench_steal_mix(c: &mut Criterion) {
    let mut group = c.benchmark_group("deque_contended");
    group.sample_size(15);
    group.bench_function("lock_free", |b| {
        let (owner, stealer) = deque::deque::<u64>();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                let stealer = stealer.clone();
                let stop = &stop;
                s.spawn(move || {
                    // A thief batch-steals into its own deque and drains
                    // it — the new engine's steal-half path.
                    let (own, _own_stealer) = deque::deque::<u64>();
                    while !stop.load(Ordering::Relaxed) {
                        black_box(stealer.steal_batch_and_pop(&own, 32));
                        while let Some(v) = own.pop() {
                            black_box(v);
                        }
                        std::hint::spin_loop();
                    }
                });
            }
            b.iter(|| black_box(owner_burst_lock_free(&owner)));
            stop.store(true, Ordering::Relaxed);
        });
    });
    group.bench_function("mutexed", |b| {
        let q: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                let q = &q;
                let stop = &stop;
                s.spawn(move || {
                    // The replaced engine's steal: drain the older half
                    // into a fresh Vec under the victim's lock.
                    while !stop.load(Ordering::Relaxed) {
                        let batch: Vec<u64> = {
                            let mut q = q.lock().unwrap();
                            let half = q.len().div_ceil(2);
                            q.drain(..half).collect()
                        };
                        black_box(batch);
                        std::hint::spin_loop();
                    }
                });
            }
            b.iter(|| black_box(owner_burst_mutexed(&q)));
            stop.store(true, Ordering::Relaxed);
        });
    });
    group.finish();
}

/// Prints the headline ratios from the recorded results — min over min,
/// the same statistic perf_smoke gates on elsewhere — against the
/// core-count-tiered target documented at module level.
fn report_speedups(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let target = if cores >= 2 { 3.0 } else { 2.0 };
    let min_of = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(lbsa_support::bench::BenchResult::min_nanos)
    };
    for (name, fast, slow) in [
        ("local_ops", "deque_local/lock_free", "deque_local/mutexed"),
        (
            "steal_mix",
            "deque_contended/lock_free",
            "deque_contended/mutexed",
        ),
    ] {
        if let (Some(f), Some(s)) = (min_of(fast), min_of(slow)) {
            let ratio = s / f;
            let verdict = if ratio >= target { "met" } else { "MISSED" };
            println!(
                "deque speedup {name}: {ratio:.2}x (lock-free over mutexed) — \
                 target >={target}x on {cores} core(s): {verdict}"
            );
        }
    }
}

criterion_group!(benches, bench_local_ops, bench_steal_mix, report_speedups);
criterion_main!(benches);
