//! **T5 (bench)** — full separation pipeline cost for n = 2.

use lbsa_explorer::Limits;
use lbsa_hierarchy::power::{certify_power_table_o_n, certify_power_table_o_prime};
use lbsa_hierarchy::separation::run_separation;
use lbsa_support::bench::Criterion;
use lbsa_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_separation(c: &mut Criterion) {
    let mut group = c.benchmark_group("separation");
    group.sample_size(10);

    group.bench_function("power_table_o_2", |b| {
        b.iter(|| black_box(certify_power_table_o_n(2, 2, Limits::default()).unwrap()));
    });

    group.bench_function("power_table_o_prime_2", |b| {
        b.iter(|| black_box(certify_power_table_o_prime(2, 2, Limits::default()).unwrap()));
    });

    group.bench_function("full_pipeline_n2", |b| {
        b.iter(|| black_box(run_separation(2, 2, Limits::default(), 3).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_separation);
criterion_main!(benches);
