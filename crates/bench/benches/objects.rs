//! **F3** — object-specification throughput: ns per operation for each
//! object family (the inner loop of every simulation and exploration).

use lbsa_core::ids::Label;
use lbsa_core::spec::ObjectSpec;
use lbsa_core::value::int;
use lbsa_core::{AnyObject, Op};
use lbsa_support::bench::{BatchSize, Criterion};
use lbsa_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_objects(c: &mut Criterion) {
    let mut group = c.benchmark_group("objects");

    group.bench_function("register_write_read", |b| {
        let obj = AnyObject::register();
        b.iter_batched(
            || obj.initial_state(),
            |mut s| {
                obj.apply_deterministic(&mut s, &Op::Write(int(7))).unwrap();
                obj.apply_deterministic(&mut s, &Op::Read).unwrap();
                black_box(s)
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("consensus_propose", |b| {
        let obj = AnyObject::consensus(4).unwrap();
        b.iter_batched(
            || obj.initial_state(),
            |mut s| {
                for i in 0..4 {
                    obj.apply_deterministic(&mut s, &Op::Propose(int(i)))
                        .unwrap();
                }
                black_box(s)
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("pac_pair", |b| {
        let obj = AnyObject::pac(4).unwrap();
        let l1 = Label::new(1).unwrap();
        b.iter_batched(
            || obj.initial_state(),
            |mut s| {
                obj.apply_deterministic(&mut s, &Op::ProposePac(int(3), l1))
                    .unwrap();
                obj.apply_deterministic(&mut s, &Op::DecidePac(l1)).unwrap();
                black_box(s)
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("strong_sa_propose_branching", |b| {
        let obj = AnyObject::strong_sa();
        b.iter_batched(
            || obj.initial_state(),
            |s| {
                let outs = obj.outcomes(&s, &Op::Propose(int(1))).unwrap();
                black_box(outs.into_vec())
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("set_agreement_propose_branching", |b| {
        let obj = AnyObject::set_agreement(6, 2).unwrap();
        b.iter_batched(
            || {
                let mut s = obj.initial_state();
                for i in 0..3 {
                    let outs = obj.outcomes(&s, &Op::Propose(int(i))).unwrap();
                    s = outs.into_vec().pop().unwrap().1;
                }
                s
            },
            |s| {
                let outs = obj.outcomes(&s, &Op::Propose(int(9))).unwrap();
                black_box(outs.into_vec())
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("combined_pac_mixed", |b| {
        let obj = AnyObject::o_n(2).unwrap();
        let l1 = Label::new(1).unwrap();
        b.iter_batched(
            || obj.initial_state(),
            |mut s| {
                obj.apply_deterministic(&mut s, &Op::ProposeC(int(1)))
                    .unwrap();
                obj.apply_deterministic(&mut s, &Op::ProposeP(int(2), l1))
                    .unwrap();
                obj.apply_deterministic(&mut s, &Op::DecideP(l1)).unwrap();
                black_box(s)
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("power_object_propose", |b| {
        let obj = AnyObject::o_prime_n(2, 3).unwrap();
        b.iter_batched(
            || obj.initial_state(),
            |s| {
                let outs = obj.outcomes(&s, &Op::ProposeAt(int(1), 2)).unwrap();
                black_box(outs.into_vec())
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_objects);
criterion_main!(benches);
