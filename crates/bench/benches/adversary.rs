//! **F2 (bench)** — adversary machinery cost: valency analysis and
//! non-termination certificate search over doomed candidates.

use lbsa_bench::mixed_binary_inputs;
use lbsa_core::AnyObject;
use lbsa_explorer::adversary::{bivalent_survival, find_nontermination};
use lbsa_explorer::valency::ValencyAnalysis;
use lbsa_explorer::Explorer;
use lbsa_protocols::candidates::WaitForWinner;
use lbsa_support::bench::Criterion;
use lbsa_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary");
    group.sample_size(20);

    let p = WaitForWinner::new(mixed_binary_inputs(3));
    let objects = vec![AnyObject::consensus(2).unwrap(), AnyObject::register()];
    let graph = Explorer::new(&p, &objects).exploration().run().unwrap();

    group.bench_function("valency_analysis", |b| {
        b.iter(|| black_box(ValencyAnalysis::analyze(&graph).census()));
    });

    group.bench_function("find_nontermination", |b| {
        b.iter(|| black_box(find_nontermination(&graph)));
    });

    let analysis = ValencyAnalysis::analyze(&graph);
    group.bench_function("bivalent_survival", |b| {
        b.iter(|| black_box(bivalent_survival(&graph, &analysis, 10_000)));
    });

    group.finish();
}

criterion_group!(benches, bench_adversary);
criterion_main!(benches);
