//! **F1 (bench)** — exhaustive exploration throughput as the process count
//! grows, and parallel-engine speedup on the T2 workload.
//!
//! The `t2_dac/...` benchmarks explore Algorithm 2 (n-DAC from an n-PAC
//! object) for n = 4 — the acceptance workload for the parallel engine —
//! once with one worker thread (the sequential baseline) and once with the
//! auto-resolved thread count. Besides the usual per-group JSON report,
//! this bench writes `BENCH_explore.json` at the repository root recording
//! configs/sec for both engines and the speedup, so the perf trajectory is
//! tracked in-tree.

use lbsa_bench::{distinct_inputs, mixed_binary_inputs};
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::{Configuration, ExploreOptions, Explorer, Limits};
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_protocols::dac::DacFromPac;
use lbsa_protocols::set_agreement_protocols::KSetViaStrongSa;
use lbsa_runtime::process::Protocol;
use lbsa_support::bench::{json_string, BenchmarkId, Criterion};
use lbsa_support::{criterion_group, criterion_main};
use std::collections::{HashMap, VecDeque};
use std::hint::black_box;

/// The seed exploration algorithm, kept verbatim as the perf baseline: a
/// FIFO BFS deduplicating through a `HashMap` keyed by whole (deeply
/// hashed, SipHash) configurations, storing every configuration twice —
/// once in the graph, once as a map key.
fn baseline_explore<P: Protocol>(explorer: &Explorer<'_, P>, max_configs: usize) -> (usize, usize) {
    let initial = explorer.initial_config();
    let mut configs = vec![initial.clone()];
    let mut index: HashMap<Configuration<P::LocalState>, usize> =
        HashMap::from([(initial, 0usize)]);
    let mut transitions = 0usize;
    let mut queue = VecDeque::from([0usize]);
    while let Some(node) = queue.pop_front() {
        if node >= max_configs {
            continue;
        }
        let config = configs[node].clone();
        for pid in config.enabled_pids() {
            for succ in explorer.successors_of(&config, pid).unwrap() {
                transitions += 1;
                if !index.contains_key(&succ) {
                    let t = configs.len();
                    index.insert(succ.clone(), t);
                    configs.push(succ);
                    queue.push_back(t);
                }
            }
        }
    }
    (configs.len(), transitions)
}

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_scaling");
    group.sample_size(10);

    for n in [2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("consensus_race", n), &n, |b, &n| {
            let p = ConsensusViaObject::new(mixed_binary_inputs(n), ObjId(0));
            let objects = vec![AnyObject::consensus(n).unwrap()];
            b.iter(|| {
                let g = Explorer::new(&p, &objects).exploration().run().unwrap();
                black_box(g.configs.len())
            });
        });
    }

    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("strong_sa_race", n), &n, |b, &n| {
            let p = KSetViaStrongSa::new(distinct_inputs(n), ObjId(0));
            let objects = vec![AnyObject::strong_sa()];
            b.iter(|| {
                let g = Explorer::new(&p, &objects).exploration().run().unwrap();
                black_box(g.transitions)
            });
        });
    }

    // The parallel-engine acceptance workload: T2, Algorithm 2 for n = 4.
    let n = 4usize;
    let p = DacFromPac::new(mixed_binary_inputs(n), Pid(0), ObjId(0)).unwrap();
    let objects = vec![AnyObject::pac(n).unwrap()];
    let explorer = Explorer::new(&p, &objects);
    let threads = ExploreOptions::default().resolved_threads();

    group.bench_function("t2_dac/4/baseline", |b| {
        b.iter(|| black_box(baseline_explore(&explorer, Limits::default().max_configs)));
    });
    group.bench_function("t2_dac/4/seq", |b| {
        b.iter(|| {
            let g = explorer.exploration().threads(1).run().unwrap();
            black_box(g.configs.len())
        });
    });
    group.bench_function(format!("t2_dac/4/par{threads}"), |b| {
        b.iter(|| {
            let g = explorer.exploration().run().unwrap();
            black_box(g.configs.len())
        });
    });
    group.finish();

    write_speedup_report(c, threads, &explorer);
}

/// Writes `BENCH_explore.json` at the repository root: configs/sec on T2
/// n=4 for the seed baseline algorithm, the new engine at one thread, and
/// the new engine at the auto thread count, plus the resulting speedup of
/// the shipped engine over the baseline.
fn write_speedup_report(c: &Criterion, threads: usize, explorer: &Explorer<'_, DacFromPac>) {
    let median = |suffix: &str| {
        c.results()
            .iter()
            .find(|r| r.id.ends_with(suffix))
            .map(lbsa_support::bench::BenchResult::median_nanos)
    };
    let (Some(baseline_ns), Some(seq_ns), Some(par_ns)) = (
        median("/baseline"),
        median("/seq"),
        median(&format!("/par{threads}")),
    ) else {
        return;
    };
    let g = explorer.exploration().run().unwrap();
    let expanded = g.stats.expanded;
    let per_sec = |ns: f64| expanded as f64 / (ns / 1e9);
    let speedup = baseline_ns / par_ns;
    let json = format!(
        "{{\n  \"workload\": {},\n  \"configs\": {},\n  \"transitions\": {},\n  \"threads\": {},\n  \"baseline_median_ns\": {:.0},\n  \"seq_median_ns\": {:.0},\n  \"par_median_ns\": {:.0},\n  \"baseline_configs_per_sec\": {:.0},\n  \"seq_configs_per_sec\": {:.0},\n  \"par_configs_per_sec\": {:.0},\n  \"speedup_vs_baseline\": {:.2},\n  \"speedup_par_vs_seq\": {:.2}\n}}\n",
        json_string("t2_dac_n4"),
        g.configs.len(),
        g.transitions,
        threads,
        baseline_ns,
        seq_ns,
        par_ns,
        per_sec(baseline_ns),
        per_sec(seq_ns),
        per_sec(par_ns),
        speedup,
        seq_ns / par_ns,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    if std::fs::write(path, &json).is_ok() {
        println!("\nT2 n=4 engine speedup vs seed baseline: {speedup:.2}x ({threads} threads)");
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
