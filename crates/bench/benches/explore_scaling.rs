//! **F1 (bench)** — exhaustive exploration throughput as the process count
//! grows, and parallel-engine speedup on the T2 workload.
//!
//! The `t2_dac/...` benchmarks explore Algorithm 2 (n-DAC from an n-PAC
//! object) for n = 4 — the acceptance workload for the parallel engine —
//! once with one worker thread (the sequential baseline), once with the
//! auto-resolved thread count, and once with symmetry reduction (the
//! non-distinguished processes share the input 0, so the instance is
//! symmetric under S_{n-1}); the `t2_dac/5/...` pair measures the same
//! raw-vs-reduced split at n = 5, where the larger group (S_4, order 24)
//! is what makes exhaustive exploration scale. Besides the usual per-group
//! JSON report, this bench writes `BENCH_explore.json` at the repository
//! root recording configs/sec for the engines, the parallel speedup, and
//! the orbit-reduction ratios, so the perf trajectory is tracked in-tree.

use lbsa_bench::{distinct_inputs, mixed_binary_inputs};
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::{Configuration, ExploreOptions, Explorer, Limits};
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_protocols::dac::DacFromPac;
use lbsa_protocols::set_agreement_protocols::KSetViaStrongSa;
use lbsa_runtime::process::Protocol;
use lbsa_support::bench::{json_string, BenchmarkId, Criterion};
use lbsa_support::{criterion_group, criterion_main};
use std::collections::{HashMap, VecDeque};
use std::hint::black_box;

/// The seed exploration algorithm, kept verbatim as the perf baseline: a
/// FIFO BFS deduplicating through a `HashMap` keyed by whole (deeply
/// hashed, SipHash) configurations, storing every configuration twice —
/// once in the graph, once as a map key.
fn baseline_explore<P: Protocol>(explorer: &Explorer<'_, P>, max_configs: usize) -> (usize, usize) {
    let initial = explorer.initial_config();
    let mut configs = vec![initial.clone()];
    let mut index: HashMap<Configuration<P::LocalState>, usize> =
        HashMap::from([(initial, 0usize)]);
    let mut transitions = 0usize;
    let mut queue = VecDeque::from([0usize]);
    while let Some(node) = queue.pop_front() {
        if node >= max_configs {
            continue;
        }
        let config = configs[node].clone();
        for pid in config.enabled_pids() {
            for succ in explorer.successors_of(&config, pid).unwrap() {
                transitions += 1;
                if !index.contains_key(&succ) {
                    let t = configs.len();
                    index.insert(succ.clone(), t);
                    configs.push(succ);
                    queue.push_back(t);
                }
            }
        }
    }
    (configs.len(), transitions)
}

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_scaling");
    group.sample_size(10);

    for n in [2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("consensus_race", n), &n, |b, &n| {
            let p = ConsensusViaObject::new(mixed_binary_inputs(n), ObjId(0));
            let objects = vec![AnyObject::consensus(n).unwrap()];
            b.iter(|| {
                let g = Explorer::new(&p, &objects).exploration().run().unwrap();
                black_box(g.configs.len())
            });
        });
    }

    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("strong_sa_race", n), &n, |b, &n| {
            let p = KSetViaStrongSa::new(distinct_inputs(n), ObjId(0));
            let objects = vec![AnyObject::strong_sa()];
            b.iter(|| {
                let g = Explorer::new(&p, &objects).exploration().run().unwrap();
                black_box(g.transitions)
            });
        });
    }

    // The parallel-engine acceptance workload: T2, Algorithm 2 for n = 4.
    // These feed the gated speedups in `BENCH_explore.json`, so they get a
    // larger sample than the scaling sweeps above.
    group.sample_size(20);
    let n = 4usize;
    let p = DacFromPac::new(mixed_binary_inputs(n), Pid(0), ObjId(0)).unwrap();
    let objects = vec![AnyObject::pac(n).unwrap()];
    let explorer = Explorer::new(&p, &objects);
    let threads = ExploreOptions::default().resolved_threads();

    group.bench_function("t2_dac/4/baseline", |b| {
        b.iter(|| black_box(baseline_explore(&explorer, Limits::default().max_configs)));
    });
    group.bench_function("t2_dac/4/seq", |b| {
        b.iter(|| {
            let g = explorer.exploration().threads(1).run().unwrap();
            black_box(g.configs.len())
        });
    });
    group.bench_function(format!("t2_dac/4/par{threads}"), |b| {
        b.iter(|| {
            let g = explorer.exploration().run().unwrap();
            black_box(g.configs.len())
        });
    });
    group.bench_function("t2_dac/4/reduced", |b| {
        b.iter(|| {
            let g = explorer.exploration().threads(1).symmetric().run().unwrap();
            black_box(g.configs.len())
        });
    });

    // Raw-vs-reduced at n = 5: the scale the reduction is for. Exhaustive
    // raw exploration is still feasible here (≈ 1k configs), which is what
    // lets the report cross-check the orbit count against ground truth.
    let p5 = DacFromPac::new(mixed_binary_inputs(5), Pid(0), ObjId(0)).unwrap();
    let objects5 = vec![AnyObject::pac(5).unwrap()];
    let explorer5 = Explorer::new(&p5, &objects5);
    group.bench_function("t2_dac/5/baseline", |b| {
        b.iter(|| black_box(baseline_explore(&explorer5, Limits::default().max_configs)));
    });
    group.bench_function("t2_dac/5/raw", |b| {
        b.iter(|| {
            let g = explorer5.exploration().threads(1).run().unwrap();
            black_box(g.configs.len())
        });
    });
    group.bench_function("t2_dac/5/reduced", |b| {
        b.iter(|| {
            let g = explorer5
                .exploration()
                .threads(1)
                .symmetric()
                .run()
                .unwrap();
            black_box(g.configs.len())
        });
    });
    group.finish();

    write_speedup_report(c, threads, &explorer, &explorer5);
}

/// Writes `BENCH_explore.json` at the repository root: configs/sec on T2
/// n=4 for the seed baseline algorithm, the new engine at one thread, and
/// the new engine at the auto thread count, plus the resulting speedup of
/// the shipped engine over the baseline — and, for the symmetry layer, the
/// raw-vs-reduced config counts and reduction ratios at n = 4 and n = 5
/// (the n = 4 group is only S_3, so its ratio is Burnside-capped at 6;
/// n = 5 is where the ≥ 5× reduction target is met).
///
/// The n = 4 graph is small enough (275 configs) that per-run setup
/// compresses the measured engine-vs-baseline ratio and couples it to the
/// host's thermal state; `n5_speedup_vs_baseline` is the stable, absolute
/// perf gate (see `perf_smoke`), while the n = 4 speedup is gated only
/// relative to its committed value.
fn write_speedup_report(
    c: &Criterion,
    threads: usize,
    explorer: &Explorer<'_, DacFromPac>,
    explorer5: &Explorer<'_, DacFromPac>,
) {
    // Gated speedups are computed from per-benchmark *minimum* times, not
    // medians: scheduler noise and co-tenant load only ever inflate a
    // sample, so the min is the robust estimator of the true cost on a
    // shared box. Medians are still recorded for context.
    let times = |suffix: &str| {
        c.results()
            .iter()
            .find(|r| r.id.ends_with(suffix))
            .map(|r| (r.min_nanos(), r.median_nanos()))
    };
    let (Some(baseline), Some(seq), Some(par)) = (
        times("t2_dac/4/baseline"),
        times("t2_dac/4/seq"),
        times(&format!("t2_dac/4/par{threads}")),
    ) else {
        return;
    };
    let (Some(reduced_t), Some(baseline5_t), Some(raw5_t), Some(reduced5_t)) = (
        times("t2_dac/4/reduced"),
        times("t2_dac/5/baseline"),
        times("t2_dac/5/raw"),
        times("t2_dac/5/reduced"),
    ) else {
        return;
    };
    let (baseline_min, baseline_ns) = baseline;
    let (seq_min, seq_ns) = seq;
    let (par_min, par_ns) = par;
    let (reduced_min, reduced_ns) = reduced_t;
    let (baseline5_min, _baseline5_ns) = baseline5_t;
    let (raw5_min, raw5_ns) = raw5_t;
    let (reduced5_min, reduced5_ns) = reduced5_t;
    let g = explorer.exploration().run().unwrap();
    let reduced = explorer.exploration().threads(1).symmetric().run().unwrap();
    let raw5 = explorer5.exploration().threads(1).run().unwrap();
    let reduced5 = explorer5
        .exploration()
        .threads(1)
        .symmetric()
        .run()
        .unwrap();
    let expanded = g.stats.expanded;
    let per_sec = |ns: f64| expanded as f64 / (ns / 1e9);
    let ratio = |raw: usize, red: usize| raw as f64 / red as f64;
    let speedup = baseline_min / par_min;
    let json = format!(
        "{{\n  \"workload\": {},\n  \"configs\": {},\n  \"transitions\": {},\n  \"threads\": {},\n  \"baseline_min_ns\": {:.0},\n  \"seq_min_ns\": {:.0},\n  \"par_min_ns\": {:.0},\n  \"baseline_median_ns\": {:.0},\n  \"seq_median_ns\": {:.0},\n  \"par_median_ns\": {:.0},\n  \"baseline_configs_per_sec\": {:.0},\n  \"seq_configs_per_sec\": {:.0},\n  \"par_configs_per_sec\": {:.0},\n  \"speedup_vs_baseline\": {:.2},\n  \"speedup_par_vs_seq\": {:.2},\n  \"reduced_configs\": {},\n  \"reduced_min_ns\": {:.0},\n  \"reduced_median_ns\": {:.0},\n  \"reduction_ratio\": {:.2},\n  \"speedup_reduced_vs_raw\": {:.2},\n  \"n5_raw_configs\": {},\n  \"n5_reduced_configs\": {},\n  \"n5_baseline_min_ns\": {:.0},\n  \"n5_raw_min_ns\": {:.0},\n  \"n5_reduced_min_ns\": {:.0},\n  \"n5_raw_median_ns\": {:.0},\n  \"n5_reduced_median_ns\": {:.0},\n  \"n5_speedup_vs_baseline\": {:.2},\n  \"n5_reduction_ratio\": {:.2},\n  \"n5_speedup_reduced_vs_raw\": {:.2}\n}}\n",
        json_string("t2_dac_n4"),
        g.configs.len(),
        g.transitions,
        threads,
        baseline_min,
        seq_min,
        par_min,
        baseline_ns,
        seq_ns,
        par_ns,
        per_sec(baseline_min),
        per_sec(seq_min),
        per_sec(par_min),
        speedup,
        seq_min / par_min,
        reduced.configs.len(),
        reduced_min,
        reduced_ns,
        ratio(g.configs.len(), reduced.configs.len()),
        seq_min / reduced_min,
        raw5.configs.len(),
        reduced5.configs.len(),
        baseline5_min,
        raw5_min,
        reduced5_min,
        raw5_ns,
        reduced5_ns,
        baseline5_min / raw5_min,
        ratio(raw5.configs.len(), reduced5.configs.len()),
        raw5_min / reduced5_min,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    if std::fs::write(path, &json).is_ok() {
        println!("\nT2 n=4 engine speedup vs seed baseline: {speedup:.2}x ({threads} threads)");
        println!(
            "T2 n=5 engine speedup vs seed baseline: {:.2}x",
            baseline5_min / raw5_min
        );
        println!(
            "symmetry reduction: n=4 {}->{} configs ({:.2}x), n=5 {}->{} configs ({:.2}x)",
            g.configs.len(),
            reduced.configs.len(),
            ratio(g.configs.len(), reduced.configs.len()),
            raw5.configs.len(),
            reduced5.configs.len(),
            ratio(raw5.configs.len(), reduced5.configs.len()),
        );
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
