//! **F1 (bench)** — exhaustive exploration throughput as the process count
//! grows (consensus race and 2-SA branching workloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbsa_bench::{distinct_inputs, mixed_binary_inputs};
use lbsa_core::{AnyObject, ObjId};
use lbsa_explorer::{Explorer, Limits};
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_protocols::set_agreement_protocols::KSetViaStrongSa;
use std::hint::black_box;

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_scaling");
    group.sample_size(10);

    for n in [2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("consensus_race", n), &n, |b, &n| {
            let p = ConsensusViaObject::new(mixed_binary_inputs(n), ObjId(0));
            let objects = vec![AnyObject::consensus(n).unwrap()];
            b.iter(|| {
                let g = Explorer::new(&p, &objects).explore(Limits::default()).unwrap();
                black_box(g.configs.len())
            });
        });
    }

    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("strong_sa_race", n), &n, |b, &n| {
            let p = KSetViaStrongSa::new(distinct_inputs(n), ObjId(0));
            let objects = vec![AnyObject::strong_sa()];
            b.iter(|| {
                let g = Explorer::new(&p, &objects).explore(Limits::default()).unwrap();
                black_box(g.transitions)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
