//! **F1 (bench)** — exhaustive exploration throughput as the process count
//! grows, and parallel-engine speedup on the T2 workload.
//!
//! The `t2_dac/...` benchmarks explore Algorithm 2 (n-DAC from an n-PAC
//! object) for n = 4 — the acceptance workload for the parallel engine —
//! once with one worker thread (the sequential baseline), once with the
//! auto-resolved thread count, and once with symmetry reduction (the
//! non-distinguished processes share the input 0, so the instance is
//! symmetric under S_{n-1}); the `t2_dac/5/...` pair measures the same
//! raw-vs-reduced split at n = 5, and `t2_dac/6/...` adds the regime the
//! work-stealing frontier and incremental canonicalization are for: the
//! `seq`/`ws` pair gates parallel speedup without inter-depth barriers,
//! and the `reduced` row gates that orbit reduction now *wins wall clock*
//! against raw exploration. The `kset/9/...` pair measures the same
//! seq-vs-work-stealing split on a large k-set-agreement instance
//! (≥ 10⁵ raw configurations), where frontier widths dwarf any barrier
//! cost. Besides the usual per-group JSON report, this bench writes
//! `BENCH_explore.json` at the repository root recording configs/sec for
//! the engines, the parallel and work-stealing speedups, the
//! orbit-reduction ratios, and the new steal/canonicalization counters,
//! so the perf trajectory is tracked in-tree.

use lbsa_bench::{distinct_inputs, mixed_binary_inputs};
use lbsa_core::value::int;
use lbsa_core::{AnyObject, ObjId, Pid};
use lbsa_explorer::sampling::sample_k_set_agreement;
use lbsa_explorer::{
    Configuration, ExploreOptions, Explorer, Frontier, Limits, SampleConfig, Tracer,
};
use lbsa_protocols::consensus_protocols::ConsensusViaObject;
use lbsa_protocols::dac::DacFromPac;
use lbsa_protocols::set_agreement_protocols::KSetViaStrongSa;
use lbsa_protocols::vote_propagation::VotePropagation;
use lbsa_runtime::process::Protocol;
use lbsa_support::bench::{BenchmarkId, Criterion};
use lbsa_support::json::Json;
use lbsa_support::{criterion_group, criterion_main};
use std::collections::{HashMap, VecDeque};
use std::hint::black_box;

/// Process count of the committed large k-set-agreement workload: the
/// KSetViaStrongSa race over a strong 2-SA object at n = 9 reaches ≈ 236k
/// raw configurations — past the 10⁵ mark where exploration time is pure
/// frontier throughput.
const KSET_N: usize = 9;

/// Seeded runs per iteration of the sampling-throughput benchmark: the F8
/// vote-propagation workload at n = 10 swept by the sampling engine. The
/// committed `schedules_per_sec` derived from it is the advisory floor
/// `perf_smoke` warns on.
const SAMPLING_RUNS: u64 = 200;

/// The seed exploration algorithm, kept verbatim as the perf baseline: a
/// FIFO BFS deduplicating through a `HashMap` keyed by whole (deeply
/// hashed, SipHash) configurations, storing every configuration twice —
/// once in the graph, once as a map key.
fn baseline_explore<P: Protocol>(explorer: &Explorer<'_, P>, max_configs: usize) -> (usize, usize) {
    let initial = explorer.initial_config();
    let mut configs = vec![initial.clone()];
    let mut index: HashMap<Configuration<P::LocalState>, usize> =
        HashMap::from([(initial, 0usize)]);
    let mut transitions = 0usize;
    let mut queue = VecDeque::from([0usize]);
    while let Some(node) = queue.pop_front() {
        if node >= max_configs {
            continue;
        }
        let config = configs[node].clone();
        for pid in config.enabled_pids() {
            for succ in explorer.successors_of(&config, pid).unwrap() {
                transitions += 1;
                if !index.contains_key(&succ) {
                    let t = configs.len();
                    index.insert(succ.clone(), t);
                    configs.push(succ);
                    queue.push_back(t);
                }
            }
        }
    }
    (configs.len(), transitions)
}

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_scaling");
    group.sample_size(10);

    for n in [2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("consensus_race", n), &n, |b, &n| {
            let p = ConsensusViaObject::new(mixed_binary_inputs(n), ObjId(0));
            let objects = vec![AnyObject::consensus(n).unwrap()];
            b.iter(|| {
                let g = Explorer::new(&p, &objects).exploration().run().unwrap();
                black_box(g.configs.len())
            });
        });
    }

    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("strong_sa_race", n), &n, |b, &n| {
            let p = KSetViaStrongSa::new(distinct_inputs(n), ObjId(0));
            let objects = vec![AnyObject::strong_sa()];
            b.iter(|| {
                let g = Explorer::new(&p, &objects).exploration().run().unwrap();
                black_box(g.transitions)
            });
        });
    }

    // The parallel-engine acceptance workload: T2, Algorithm 2 for n = 4.
    // These feed the gated speedups in `BENCH_explore.json`, so they get a
    // larger sample than the scaling sweeps above.
    group.sample_size(20);
    let n = 4usize;
    let p = DacFromPac::new(mixed_binary_inputs(n), Pid(0), ObjId(0)).unwrap();
    let objects = vec![AnyObject::pac(n).unwrap()];
    let explorer = Explorer::new(&p, &objects);
    let threads = ExploreOptions::default().resolved_threads();

    group.bench_function("t2_dac/4/baseline", |b| {
        b.iter(|| black_box(baseline_explore(&explorer, Limits::default().max_configs)));
    });
    group.bench_function("t2_dac/4/seq", |b| {
        b.iter(|| {
            let g = explorer.exploration().threads(1).run().unwrap();
            black_box(g.configs.len())
        });
    });
    group.bench_function(format!("t2_dac/4/par{threads}"), |b| {
        b.iter(|| {
            let g = explorer.exploration().run().unwrap();
            black_box(g.configs.len())
        });
    });
    group.bench_function("t2_dac/4/reduced", |b| {
        b.iter(|| {
            let g = explorer.exploration().threads(1).symmetric().run().unwrap();
            black_box(g.configs.len())
        });
    });

    // Raw-vs-reduced at n = 5: the scale the reduction is for. Exhaustive
    // raw exploration is still feasible here (≈ 1k configs), which is what
    // lets the report cross-check the orbit count against ground truth.
    let p5 = DacFromPac::new(mixed_binary_inputs(5), Pid(0), ObjId(0)).unwrap();
    let objects5 = vec![AnyObject::pac(5).unwrap()];
    let explorer5 = Explorer::new(&p5, &objects5);
    group.bench_function("t2_dac/5/baseline", |b| {
        b.iter(|| black_box(baseline_explore(&explorer5, Limits::default().max_configs)));
    });
    group.bench_function("t2_dac/5/raw", |b| {
        b.iter(|| {
            let g = explorer5.exploration().threads(1).run().unwrap();
            black_box(g.configs.len())
        });
    });
    group.bench_function("t2_dac/5/reduced", |b| {
        b.iter(|| {
            let g = explorer5
                .exploration()
                .threads(1)
                .symmetric()
                .run()
                .unwrap();
            black_box(g.configs.len())
        });
    });

    // n = 6: the committed workload where the work-stealing frontier and
    // the incremental canonicalization must both *win* (see `perf_smoke`).
    let p6 = DacFromPac::new(mixed_binary_inputs(6), Pid(0), ObjId(0)).unwrap();
    let objects6 = vec![AnyObject::pac(6).unwrap()];
    let explorer6 = Explorer::new(&p6, &objects6);
    group.bench_function("t2_dac/6/seq", |b| {
        b.iter(|| {
            let g = explorer6.exploration().threads(1).run().unwrap();
            black_box(g.configs.len())
        });
    });
    group.bench_function(format!("t2_dac/6/ws{threads}"), |b| {
        b.iter(|| {
            let g = explorer6
                .exploration()
                .frontier(Frontier::WorkStealing)
                .run()
                .unwrap();
            black_box(g.configs.len())
        });
    });
    group.bench_function("t2_dac/6/reduced", |b| {
        b.iter(|| {
            let g = explorer6
                .exploration()
                .threads(1)
                .symmetric()
                .run()
                .unwrap();
            black_box(g.configs.len())
        });
    });

    // The large k-set-agreement instance: ≥ 10⁵ raw configurations, the
    // regime where frontier throughput is everything. Runs take a quarter
    // second each, so the sample drops back to the sweep size.
    group.sample_size(10);
    let pk = KSetViaStrongSa::new(distinct_inputs(KSET_N), ObjId(0));
    let objectsk = vec![AnyObject::strong_sa()];
    let explorerk = Explorer::new(&pk, &objectsk);
    group.bench_function(format!("kset/{KSET_N}/seq"), |b| {
        b.iter(|| {
            let g = explorerk.exploration().threads(1).run().unwrap();
            black_box(g.configs.len())
        });
    });
    group.bench_function(format!("kset/{KSET_N}/ws{threads}"), |b| {
        b.iter(|| {
            let g = explorerk
                .exploration()
                .frontier(Frontier::WorkStealing)
                .run()
                .unwrap();
            black_box(g.configs.len())
        });
    });
    // Sampling-engine throughput: the F8 vote-propagation workload at
    // n = 10, one worker (per-run cost, not parallel scaling — the
    // thread-independence contract is covered by tests).
    let pv = VotePropagation::random(10, 2, 3, 1, 2, 42).unwrap();
    let mailboxes = pv.mailboxes();
    let sample_cfg = SampleConfig {
        runs: SAMPLING_RUNS,
        seed0: 0,
        max_steps: 100_000,
        threads: 1,
        ..SampleConfig::default()
    };
    let valid = [int(1)];
    group.bench_function(format!("sampling/vote_prop/{SAMPLING_RUNS}"), |b| {
        b.iter(|| {
            let r =
                sample_k_set_agreement(&pv, &mailboxes, 1, &valid, sample_cfg, &Tracer::disabled())
                    .unwrap();
            black_box(r.runs)
        });
    });
    group.finish();

    write_speedup_report(c, threads, &explorer, &explorer5, &explorer6, &explorerk);
}

/// Rounds to two decimals — the report is read by humans and diffed in
/// review, so ratios keep the precision they are gated at.
fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Writes `BENCH_explore.json` at the repository root: configs/sec on T2
/// n=4 for the seed baseline algorithm, the new engine at one thread, and
/// the new engine at the auto thread count, plus the resulting speedup of
/// the shipped engine over the baseline — and, for the symmetry layer, the
/// raw-vs-reduced config counts and reduction ratios at n = 4, 5, and 6
/// (the n = 4 group is only S_3, so its ratio is Burnside-capped at 6;
/// n = 5 is where the ≥ 5× reduction target is met). The n = 6 and
/// `kset` blocks additionally record the work-stealing frontier: its
/// seq-vs-ws speedup, the steal counters, and the incremental
/// canonicalization split (patches vs full recomputations), plus
/// `effective_cores` so the gates can scale expectations to the host.
///
/// The n = 4 graph is small enough (275 configs) that per-run setup
/// compresses the measured engine-vs-baseline ratio and couples it to the
/// host's thermal state; `n5_speedup_vs_baseline` is the stable, absolute
/// perf gate (see `perf_smoke`), while the n = 4 speedup is gated only
/// relative to its committed value.
fn write_speedup_report(
    c: &Criterion,
    threads: usize,
    explorer: &Explorer<'_, DacFromPac>,
    explorer5: &Explorer<'_, DacFromPac>,
    explorer6: &Explorer<'_, DacFromPac>,
    explorerk: &Explorer<'_, KSetViaStrongSa>,
) {
    // Gated speedups are computed from per-benchmark *minimum* times, not
    // medians: scheduler noise and co-tenant load only ever inflate a
    // sample, so the min is the robust estimator of the true cost on a
    // shared box. Medians are still recorded for context.
    let times = |suffix: &str| {
        c.results()
            .iter()
            .find(|r| r.id.ends_with(suffix))
            .map(|r| (r.min_nanos(), r.median_nanos()))
    };
    let (Some(baseline), Some(seq), Some(par)) = (
        times("t2_dac/4/baseline"),
        times("t2_dac/4/seq"),
        times(&format!("t2_dac/4/par{threads}")),
    ) else {
        return;
    };
    let (Some(reduced_t), Some(baseline5_t), Some(raw5_t), Some(reduced5_t)) = (
        times("t2_dac/4/reduced"),
        times("t2_dac/5/baseline"),
        times("t2_dac/5/raw"),
        times("t2_dac/5/reduced"),
    ) else {
        return;
    };
    let (Some(seq6_t), Some(ws6_t), Some(reduced6_t), Some(kseq_t), Some(kws_t)) = (
        times("t2_dac/6/seq"),
        times(&format!("t2_dac/6/ws{threads}")),
        times("t2_dac/6/reduced"),
        times(&format!("kset/{KSET_N}/seq")),
        times(&format!("kset/{KSET_N}/ws{threads}")),
    ) else {
        return;
    };
    let (baseline_min, baseline_ns) = baseline;
    let (seq_min, seq_ns) = seq;
    let (par_min, par_ns) = par;
    let (reduced_min, reduced_ns) = reduced_t;
    let (baseline5_min, _baseline5_ns) = baseline5_t;
    let (raw5_min, raw5_ns) = raw5_t;
    let (reduced5_min, reduced5_ns) = reduced5_t;
    let (seq6_min, seq6_ns) = seq6_t;
    let (ws6_min, ws6_ns) = ws6_t;
    let (reduced6_min, reduced6_ns) = reduced6_t;
    let (kseq_min, kseq_ns) = kseq_t;
    let (kws_min, kws_ns) = kws_t;
    let g = explorer.exploration().run().unwrap();
    let reduced = explorer.exploration().threads(1).symmetric().run().unwrap();
    let raw5 = explorer5.exploration().threads(1).run().unwrap();
    let reduced5 = explorer5
        .exploration()
        .threads(1)
        .symmetric()
        .run()
        .unwrap();
    let raw6 = explorer6.exploration().threads(1).run().unwrap();
    let reduced6 = explorer6
        .exploration()
        .threads(1)
        .symmetric()
        .run()
        .unwrap();
    let ws6 = explorer6
        .exploration()
        .frontier(Frontier::WorkStealing)
        .run()
        .unwrap();
    let ksetg = explorerk
        .exploration()
        .frontier(Frontier::WorkStealing)
        .run()
        .unwrap();
    assert_eq!(
        ws6.configs.len(),
        raw6.configs.len(),
        "work-stealing must reach the same state space"
    );
    assert_eq!(KSET_N, explorerk.initial_config().procs.len());
    let expanded = g.stats.expanded;
    let per_sec = |ns: f64| expanded as f64 / (ns / 1e9);
    let ratio = |raw: usize, red: usize| round2(raw as f64 / red as f64);
    let speedup = round2(baseline_min / par_min);
    let effective_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut json = Json::object()
        .set("workload", "t2_dac_n4")
        .set("configs", g.configs.len())
        .set("transitions", g.transitions)
        .set("threads", threads)
        .set("effective_cores", effective_cores)
        .set("baseline_min_ns", baseline_min.round())
        .set("seq_min_ns", seq_min.round())
        .set("par_min_ns", par_min.round())
        .set("baseline_median_ns", baseline_ns.round())
        .set("seq_median_ns", seq_ns.round())
        .set("par_median_ns", par_ns.round())
        .set("baseline_configs_per_sec", per_sec(baseline_min).round())
        .set("seq_configs_per_sec", per_sec(seq_min).round())
        .set("par_configs_per_sec", per_sec(par_min).round())
        .set("speedup_vs_baseline", speedup)
        .set("speedup_par_vs_seq", round2(seq_min / par_min))
        .set("reduced_configs", reduced.configs.len())
        .set("reduced_min_ns", reduced_min.round())
        .set("reduced_median_ns", reduced_ns.round())
        .set(
            "reduction_ratio",
            ratio(g.configs.len(), reduced.configs.len()),
        )
        .set("speedup_reduced_vs_raw", round2(seq_min / reduced_min))
        .set("n5_raw_configs", raw5.configs.len())
        .set("n5_reduced_configs", reduced5.configs.len())
        .set("n5_baseline_min_ns", baseline5_min.round())
        .set("n5_raw_min_ns", raw5_min.round())
        .set("n5_reduced_min_ns", reduced5_min.round())
        .set("n5_raw_median_ns", raw5_ns.round())
        .set("n5_reduced_median_ns", reduced5_ns.round())
        .set("n5_speedup_vs_baseline", round2(baseline5_min / raw5_min))
        .set(
            "n5_reduction_ratio",
            ratio(raw5.configs.len(), reduced5.configs.len()),
        )
        .set("n5_speedup_reduced_vs_raw", round2(raw5_min / reduced5_min))
        .set("n6_raw_configs", raw6.configs.len())
        .set("n6_reduced_configs", reduced6.configs.len())
        .set("n6_seq_min_ns", seq6_min.round())
        .set("n6_ws_min_ns", ws6_min.round())
        .set("n6_reduced_min_ns", reduced6_min.round())
        .set("n6_seq_median_ns", seq6_ns.round())
        .set("n6_ws_median_ns", ws6_ns.round())
        .set("n6_reduced_median_ns", reduced6_ns.round())
        .set("n6_speedup_par_vs_seq", round2(seq6_min / ws6_min))
        .set(
            "n6_reduction_ratio",
            ratio(raw6.configs.len(), reduced6.configs.len()),
        )
        .set("n6_speedup_reduced_vs_raw", round2(seq6_min / reduced6_min))
        .set("n6_ws_steals", ws6.stats.steals)
        .set("n6_ws_steal_fails", ws6.stats.steal_fails)
        .set("n6_ws_local_hits", ws6.stats.local_hits)
        .set("n6_ws_park_count", ws6.stats.park_count)
        .set("n6_ws_deque_grows", ws6.stats.deque_grows)
        .set("n6_ws_index_batch_hits", ws6.stats.index_batch_hits)
        // Level-expand latency quantiles from the always-on histograms of
        // the sequential n = 6 run (octave resolution — see HistogramNs).
        // They ride into `BENCH_history.jsonl` via perf_smoke, giving the
        // regression tracker a latency *distribution*, not just minima.
        .set("n6_level_expand_p50_ns", raw6.stats.hist.level_expand.p50())
        .set("n6_level_expand_p95_ns", raw6.stats.hist.level_expand.p95())
        .set("n6_level_expand_p99_ns", raw6.stats.hist.level_expand.p99())
        .set("n6_canon_patches", reduced6.stats.canon_patches)
        .set("n6_canon_full", reduced6.stats.canon_full)
        // Memory accounting (structural estimates, see `ExploreStats`):
        // the interner footprint after the full n = 6 run, and the total
        // retained bytes (interner + index + graph) per reachable state.
        // Both feed advisory warn-only ceilings in `perf_smoke` and ride
        // into `BENCH_history.jsonl`.
        .set("n6_peak_interner_bytes", raw6.stats.interner_bytes)
        .set("n6_index_bytes", raw6.stats.index_bytes)
        .set(
            "bytes_per_state",
            round2(
                (raw6.stats.interner_bytes + raw6.stats.index_bytes + raw6.approx_bytes()) as f64
                    / raw6.configs.len().max(1) as f64,
            ),
        )
        .set("kset_n", KSET_N)
        .set("kset_raw_configs", ksetg.configs.len())
        .set("kset_seq_min_ns", kseq_min.round())
        .set("kset_ws_min_ns", kws_min.round())
        .set("kset_seq_median_ns", kseq_ns.round())
        .set("kset_ws_median_ns", kws_ns.round())
        .set("kset_speedup_par_vs_seq", round2(kseq_min / kws_min))
        .set("kset_ws_steals", ksetg.stats.steals)
        .set("kset_ws_steal_fails", ksetg.stats.steal_fails)
        .set("kset_ws_local_hits", ksetg.stats.local_hits)
        .set("kset_ws_park_count", ksetg.stats.park_count)
        .set("kset_ws_deque_grows", ksetg.stats.deque_grows)
        .set("kset_ws_index_batch_hits", ksetg.stats.index_batch_hits);
    // Sampling-engine throughput (schedules/sec on the F8 workload): an
    // advisory floor in perf_smoke, and a BENCH_history.jsonl column.
    if let Some((sampling_min, sampling_med)) =
        times(&format!("sampling/vote_prop/{SAMPLING_RUNS}"))
    {
        json = json
            .set("sampling_runs", SAMPLING_RUNS)
            .set("sampling_min_ns", sampling_min.round())
            .set("sampling_median_ns", sampling_med.round())
            .set(
                "schedules_per_sec",
                (SAMPLING_RUNS as f64 / (sampling_min / 1e9)).round(),
            );
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    if std::fs::write(path, json.pretty() + "\n").is_ok() {
        println!("\nT2 n=4 engine speedup vs seed baseline: {speedup:.2}x ({threads} threads)");
        println!(
            "T2 n=5 engine speedup vs seed baseline: {:.2}x",
            baseline5_min / raw5_min
        );
        println!(
            "T2 n=6 work-stealing vs seq: {:.2}x; reduced vs raw wall clock: {:.2}x",
            seq6_min / ws6_min,
            reduced6_min / seq6_min,
        );
        println!(
            "kset n={KSET_N} ({} configs) work-stealing vs seq: {:.2}x",
            ksetg.configs.len(),
            kseq_min / kws_min,
        );
        println!(
            "symmetry reduction: n=4 {}->{} configs ({:.2}x), n=5 {}->{} configs ({:.2}x), \
             n=6 {}->{} configs ({:.2}x)",
            g.configs.len(),
            reduced.configs.len(),
            ratio(g.configs.len(), reduced.configs.len()),
            raw5.configs.len(),
            reduced5.configs.len(),
            ratio(raw5.configs.len(), reduced5.configs.len()),
            raw6.configs.len(),
            reduced6.configs.len(),
            ratio(raw6.configs.len(), reduced6.configs.len()),
        );
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
