//! **T4 (bench)** — consensus-number certification cost per object family.

use lbsa_core::AnyObject;
use lbsa_explorer::Limits;
use lbsa_hierarchy::certify::{certified_consensus_number, Face};
use lbsa_support::bench::Criterion;
use lbsa_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_certify(c: &mut Criterion) {
    let mut group = c.benchmark_group("certify");
    group.sample_size(10);

    group.bench_function("consensus_3", |b| {
        let obj = AnyObject::consensus(3).unwrap();
        b.iter(|| {
            black_box(
                certified_consensus_number(&obj, Face::Propose, 5, Limits::default()).unwrap(),
            )
        });
    });

    group.bench_function("o_2", |b| {
        let obj = AnyObject::o_n(2).unwrap();
        b.iter(|| {
            black_box(
                certified_consensus_number(&obj, Face::ProposeC, 4, Limits::default()).unwrap(),
            )
        });
    });

    group.bench_function("o_prime_2", |b| {
        let obj = AnyObject::o_prime_n(2, 2).unwrap();
        b.iter(|| {
            black_box(
                certified_consensus_number(&obj, Face::PowerLevel1, 4, Limits::default()).unwrap(),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_certify);
criterion_main!(benches);
