//! **T1 (bench)** — exhaustive PAC property sweep throughput: how fast the
//! spec-level checks of experiment T1 run (sequences per second).

use lbsa_core::history::{check_pac_properties, for_each_op_sequence, pac_op_alphabet, run_pac};
use lbsa_core::pac::PacSpec;
use lbsa_core::value::int;
use lbsa_support::bench::Criterion;
use lbsa_support::{criterion_group, criterion_main};
use std::hint::black_box;

fn bench_pac_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("pac_spec");
    group.sample_size(20);

    group.bench_function("exhaustive_sweep_n2_len4", |b| {
        let spec = PacSpec::new(2).unwrap();
        let alphabet = pac_op_alphabet(2, &[int(1), int(2)]);
        b.iter(|| {
            let mut checked = 0usize;
            for_each_op_sequence(&alphabet, 4, |ops| {
                let history = run_pac(&spec, ops).unwrap();
                check_pac_properties(&history).unwrap();
                checked += 1;
            });
            black_box(checked)
        });
    });

    group.bench_function("exhaustive_sweep_n3_len3", |b| {
        let spec = PacSpec::new(3).unwrap();
        let alphabet = pac_op_alphabet(3, &[int(1), int(2)]);
        b.iter(|| {
            let mut checked = 0usize;
            for_each_op_sequence(&alphabet, 3, |ops| {
                let history = run_pac(&spec, ops).unwrap();
                check_pac_properties(&history).unwrap();
                checked += 1;
            });
            black_box(checked)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pac_sweep);
criterion_main!(benches);
