//! **F5 (bench)** — universal-construction overhead: base steps executed
//! per simulated front-end operation.

use lbsa_core::value::int;
use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
use lbsa_protocols::universal::UniversalProcedure;
use lbsa_runtime::derived::DerivedProtocol;
use lbsa_runtime::outcome::FirstOutcome;
use lbsa_runtime::process::{Protocol, Step};
use lbsa_runtime::scheduler::RoundRobin;
use lbsa_runtime::system::System;
use lbsa_support::bench::Criterion;
use lbsa_support::{criterion_group, criterion_main};
use std::hint::black_box;

#[derive(Debug)]
struct Churn {
    n: usize,
}

impl Protocol for Churn {
    type LocalState = u8;
    fn num_processes(&self) -> usize {
        self.n
    }
    fn init(&self, _pid: Pid) -> u8 {
        0
    }
    fn pending_op(&self, pid: Pid, s: &u8) -> (ObjId, Op) {
        if *s == 0 {
            (ObjId(0), Op::Write(int(pid.index() as i64 + 1)))
        } else {
            (ObjId(0), Op::Read)
        }
    }
    fn on_response(&self, _pid: Pid, s: &u8, _r: Value) -> Step<u8> {
        if *s == 0 {
            Step::Continue(1)
        } else {
            Step::Halt
        }
    }
}

fn bench_universal(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal");

    for n in [2usize, 3, 4] {
        let mut ops = vec![Op::Read];
        ops.extend((1..=n).map(|i| Op::Write(int(i as i64))));
        let uni = UniversalProcedure::new(AnyObject::register(), ops, n, 2 * n + 2).unwrap();
        let inner = Churn { n };
        group.bench_function(format!("register_churn_n{n}"), |b| {
            b.iter(|| {
                let derived = DerivedProtocol::new(&inner, &uni, vec![uni.frontend(0)]);
                let objects = uni.base_objects().unwrap();
                let mut sys = System::new(&derived, &objects).unwrap();
                sys.set_record_trace(false);
                let res = sys
                    .run(&mut RoundRobin::new(), &mut FirstOutcome, 1_000_000)
                    .unwrap();
                black_box(res.steps)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_universal);
criterion_main!(benches);
