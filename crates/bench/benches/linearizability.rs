//! **F4** — linearizability checker runtime vs history length and
//! contention (the validation cost of every derived implementation).

use lbsa_core::value::int;
use lbsa_core::{AnyObject, ObjId, Op, Pid, Value};
use lbsa_explorer::linearizability::check_linearizable;
use lbsa_runtime::derived::CompletedOp;
use lbsa_support::bench::{BenchmarkId, Criterion};
use lbsa_support::{criterion_group, criterion_main};
use std::hint::black_box;

/// A sequential register history of alternating writes and reads.
fn sequential_register_history(len: usize) -> Vec<CompletedOp> {
    let mut h = Vec::with_capacity(len);
    let mut last = Value::Nil;
    for i in 0..len {
        let (op, response) = if i % 2 == 0 {
            last = int((i / 2) as i64);
            (Op::Write(last), Value::Done)
        } else {
            (Op::Read, last)
        };
        h.push(CompletedOp {
            pid: Pid(i % 3),
            obj: ObjId(0),
            op,
            response,
            invoked_at: i,
            responded_at: i,
        });
    }
    h
}

/// A fully-overlapping consensus history: all proposals span the whole run.
fn overlapping_consensus_history(width: usize) -> Vec<CompletedOp> {
    (0..width)
        .map(|i| CompletedOp {
            pid: Pid(i),
            obj: ObjId(0),
            op: Op::Propose(int(i as i64)),
            response: int(0),
            invoked_at: 0,
            responded_at: 100,
        })
        .collect()
}

fn bench_linearizability(c: &mut Criterion) {
    let mut group = c.benchmark_group("linearizability");

    for len in [8usize, 16, 32, 64] {
        group.bench_with_input(
            BenchmarkId::new("sequential_register", len),
            &len,
            |b, &len| {
                let history = sequential_register_history(len);
                let specs = vec![AnyObject::register()];
                b.iter(|| black_box(check_linearizable(&history, &specs).unwrap()));
            },
        );
    }

    for width in [3usize, 5, 7] {
        group.bench_with_input(
            BenchmarkId::new("overlapping_consensus", width),
            &width,
            |b, &width| {
                let history = overlapping_consensus_history(width);
                let specs = vec![AnyObject::consensus(width).unwrap()];
                b.iter(|| black_box(check_linearizable(&history, &specs).unwrap()));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_linearizability);
criterion_main!(benches);
