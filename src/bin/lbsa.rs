//! `lbsa` — command-line driver for the Life Beyond Set Agreement
//! laboratory.
//!
//! ```text
//! lbsa levels                    certified consensus numbers of the paper's objects
//! lbsa separation [n] [max_k]    run the O_n vs O'_n pipeline (default 2 2)
//! lbsa dac <n>                   verify Algorithm 2 solves n-DAC, exhaustively
//! lbsa adversary                 refute wait-for-winner with a replayable certificate
//! lbsa dot <workload> <n>        print the execution graph in Graphviz DOT
//!                                (workloads: race, dac, sa)
//! ```

use life_beyond_set_agreement::core::{AnyObject, ObjId, Pid, Value};
use life_beyond_set_agreement::explorer::adversary::{find_nontermination, verify_witness};
use life_beyond_set_agreement::explorer::checker::{check_consensus, check_dac};
use life_beyond_set_agreement::explorer::{Explorer, Limits};
use life_beyond_set_agreement::hierarchy::certify::{certified_consensus_number, Face};
use life_beyond_set_agreement::hierarchy::report::Table;
use life_beyond_set_agreement::hierarchy::separation::run_separation;
use life_beyond_set_agreement::protocols::candidates::WaitForWinner;
use life_beyond_set_agreement::protocols::consensus_protocols::ConsensusViaObject;
use life_beyond_set_agreement::protocols::dac::{all_binary_inputs, DacFromPac};
use life_beyond_set_agreement::protocols::set_agreement_protocols::KSetViaStrongSa;
use std::process::ExitCode;

const USAGE: &str = "usage: lbsa <command>

commands:
  levels                    certified consensus numbers of the paper's objects
  separation [n] [max_k]    run the O_n vs O'_n pipeline (default: 2 2)
  dac <n>                   verify Algorithm 2 solves n-DAC (n in 2..=4)
  adversary                 refute wait-for-winner with a replayable certificate
  dot <workload> <n>        print the execution graph in DOT (race | dac | sa)
";

fn mixed_inputs(n: usize) -> Vec<Value> {
    let mut v = vec![Value::Int(0); n];
    if let Some(first) = v.first_mut() {
        *first = Value::Int(1);
    }
    v
}

fn cmd_levels() -> Result<(), String> {
    let limits = Limits::default();
    let mut table = Table::new(
        "certified consensus numbers",
        vec!["object", "level", "refutation at n+1"],
    );
    let cases: Vec<(&str, AnyObject, Face)> = vec![
        (
            "2-consensus",
            AnyObject::consensus(2).map_err(|e| e.to_string())?,
            Face::Propose,
        ),
        (
            "3-consensus",
            AnyObject::consensus(3).map_err(|e| e.to_string())?,
            Face::Propose,
        ),
        ("2-SA", AnyObject::strong_sa(), Face::Propose),
        (
            "O_2",
            AnyObject::o_n(2).map_err(|e| e.to_string())?,
            Face::ProposeC,
        ),
        (
            "O_3",
            AnyObject::o_n(3).map_err(|e| e.to_string())?,
            Face::ProposeC,
        ),
        (
            "O'_2",
            AnyObject::o_prime_n(2, 2).map_err(|e| e.to_string())?,
            Face::PowerLevel1,
        ),
        (
            "O'_3",
            AnyObject::o_prime_n(3, 2).map_err(|e| e.to_string())?,
            Face::PowerLevel1,
        ),
    ];
    for (name, obj, face) in cases {
        let cert = certified_consensus_number(&obj, face, 5, limits)
            .map_err(|v| format!("{name}: certification failed: {v}"))?;
        table.row(vec![
            name.into(),
            cert.level.to_string(),
            cert.refutation.to_string(),
        ]);
    }
    println!("{table}");
    Ok(())
}

fn cmd_separation(n: usize, max_k: usize) -> Result<(), String> {
    let report = run_separation(n, max_k, Limits::default(), 8).map_err(|e| e.to_string())?;
    println!("O_{n} vs O'_{n} (power tables truncated at K = {max_k})");
    for (k, a) in report.o_n_power.iter() {
        let b = report.o_prime_power.n_k(k).expect("same depth");
        println!("  k = {k}: n_k(O_{n}) = {a}, n_k(O'_{n}) = {b}");
    }
    println!("powers match: {}", report.powers_match());
    println!(
        "Lemma 6.4 histories checked: {}",
        report.lemma_6_4_histories_checked
    );
    for r in &report.refutations {
        println!("refuted: {} — {}", r.candidate, r.violation);
    }
    println!(
        "separation established: {}",
        report.separation_established()
    );
    Ok(())
}

fn cmd_dac(n: usize) -> Result<(), String> {
    if !(2..=4).contains(&n) {
        return Err("n must be in 2..=4 (state spaces beyond are large)".into());
    }
    let mut configs = 0usize;
    for inputs in all_binary_inputs(n) {
        let protocol = DacFromPac::new(inputs, Pid(0), ObjId(0))?;
        let objects = vec![AnyObject::pac(n).map_err(|e| e.to_string())?];
        let explorer = Explorer::new(&protocol, &objects);
        let stats = check_dac(
            &explorer,
            &protocol.instance(),
            Limits::new(2_000_000),
            6 * n,
        )
        .map_err(|v| format!("{n}-DAC violated: {v}"))?;
        configs += stats.configs;
    }
    println!("Theorem 4.1 verified for n = {n}: all four n-DAC properties hold");
    println!(
        "({configs} configurations across {} input vectors)",
        1usize << n
    );
    Ok(())
}

fn cmd_adversary() -> Result<(), String> {
    let inputs = mixed_inputs(3);
    let protocol = WaitForWinner::new(inputs);
    let objects = vec![
        AnyObject::consensus(2).map_err(|e| e.to_string())?,
        AnyObject::register(),
    ];
    let explorer = Explorer::new(&protocol, &objects);
    match check_consensus(&explorer, &mixed_inputs(3), Limits::default()) {
        Ok(_) => return Err("candidate unexpectedly correct".into()),
        Err(v) => println!("candidate refuted: {v}"),
    }
    let graph = explorer.exploration().run().map_err(|e| e.to_string())?;
    let witness = find_nontermination(&graph).ok_or("expected a non-termination certificate")?;
    println!(
        "certificate: prefix {} step(s), cycle {} step(s), victims {:?}",
        witness.prefix.len(),
        witness.cycle.len(),
        witness.victims
    );
    println!("certificate verifies: {}", verify_witness(&graph, &witness));
    println!("schedule (3 pumps): {:?}", witness.schedule(3));
    Ok(())
}

fn cmd_dot(workload: &str, n: usize) -> Result<(), String> {
    if !(2..=5).contains(&n) {
        return Err("n must be in 2..=5".into());
    }
    let limits = Limits::new(100_000);
    let dot = match workload {
        "race" => {
            let p = ConsensusViaObject::new(mixed_inputs(n), ObjId(0));
            let objects = vec![AnyObject::consensus(n).map_err(|e| e.to_string())?];
            let g = Explorer::new(&p, &objects)
                .exploration()
                .limits(limits)
                .run()
                .map_err(|e| e.to_string())?;
            g.to_dot(|i, c| format!("{i}:{:?}", c.distinct_decisions()))
        }
        "dac" => {
            let p = DacFromPac::new(mixed_inputs(n), Pid(0), ObjId(0))?;
            let objects = vec![AnyObject::pac(n).map_err(|e| e.to_string())?];
            let g = Explorer::new(&p, &objects)
                .exploration()
                .limits(limits)
                .run()
                .map_err(|e| e.to_string())?;
            g.to_dot(|i, c| format!("{i}:{:?}", c.distinct_decisions()))
        }
        "sa" => {
            let inputs: Vec<Value> = (0..n).map(|i| Value::Int(i as i64)).collect();
            let p = KSetViaStrongSa::new(inputs, ObjId(0));
            let objects = vec![AnyObject::strong_sa()];
            let g = Explorer::new(&p, &objects)
                .exploration()
                .limits(limits)
                .run()
                .map_err(|e| e.to_string())?;
            g.to_dot(|i, c| format!("{i}:{:?}", c.distinct_decisions()))
        }
        other => {
            return Err(format!(
                "unknown workload '{other}' (expected race | dac | sa)"
            ))
        }
    };
    println!("{dot}");
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse = |s: &String| s.parse::<usize>().map_err(|_| format!("not a number: {s}"));
    match args.first().map(String::as_str) {
        Some("levels") => cmd_levels(),
        Some("separation") => {
            let n = args.get(1).map(parse).transpose()?.unwrap_or(2);
            let max_k = args.get(2).map(parse).transpose()?.unwrap_or(2);
            cmd_separation(n, max_k)
        }
        Some("dac") => {
            let n = args.get(1).map(parse).transpose()?.ok_or("dac needs <n>")?;
            cmd_dac(n)
        }
        Some("adversary") => cmd_adversary(),
        Some("dot") => {
            let workload = args.get(1).ok_or("dot needs <workload> <n>")?.clone();
            let n = args.get(2).map(parse).transpose()?.ok_or("dot needs <n>")?;
            cmd_dot(&workload, n)
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
