//! # Life Beyond Set Agreement — executable reproduction
//!
//! This facade crate re-exports the whole workspace behind a single
//! dependency. See the individual crates for the full documentation:
//!
//! * [`core`] (`lbsa-core`) — sequential specifications of the paper's
//!   objects: registers, n-consensus, n-PAC, 2-SA, (n,k)-SA, (n,m)-PAC,
//!   `Oₙ`, and `O'ₙ`.
//! * [`runtime`] (`lbsa-runtime`) — the asynchronous shared-memory system:
//!   protocols, schedulers, crashes, traces, derived objects.
//! * [`explorer`] (`lbsa-explorer`) — exhaustive execution exploration,
//!   valency analysis, bivalency adversaries, and linearizability checking.
//! * [`protocols`] (`lbsa-protocols`) — Algorithm 2 (n-DAC from n-PAC),
//!   consensus and k-set agreement protocols, the paper's derived
//!   implementations, and a universal construction.
//! * [`hierarchy`] (`lbsa-hierarchy`) — consensus-number certification, set
//!   agreement power tables, and the `Oₙ` vs `O'ₙ` separation pipeline.
//!
//! ## Quickstart
//!
//! ```
//! use life_beyond_set_agreement::core::combined::CombinedPacSpec;
//! use life_beyond_set_agreement::core::spec::ObjectSpec;
//!
//! // The paper's O_2: a (3, 2)-PAC object at level 2 of the hierarchy.
//! let o2 = CombinedPacSpec::o_n(2).expect("n >= 2");
//! assert_eq!((o2.n(), o2.m()), (3, 2));
//! ```

#![forbid(unsafe_code)]

pub use lbsa_core as core;
pub use lbsa_explorer as explorer;
pub use lbsa_hierarchy as hierarchy;
pub use lbsa_protocols as protocols;
pub use lbsa_runtime as runtime;
